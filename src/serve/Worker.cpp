//===- serve/Worker.cpp - Shard lease worker loop -------------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "serve/Worker.h"

#include "campaign/CampaignEngine.h"
#include "store/CampaignStore.h"
#include "store/Serde.h"
#include "support/Telemetry.h"

#include <sys/stat.h>
#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::serve;

namespace {

bool pathExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

void sleepMs(uint64_t Ms) { ::usleep(static_cast<useconds_t>(Ms) * 1000); }

} // namespace

ShardWorker::ShardWorker(WorkerOptions OptsIn) : Opts(std::move(OptsIn)) {}

int ShardWorker::run(std::string &ErrorOut) {
  LeaseLedger Ledger(Opts.StoreDir);

  // Wait for the coordinator's config (it lands after the ledger, so a
  // readable config implies a leaseable deployment). A missing store
  // directory is a usage error, not something to wait out.
  WorkerConfigMsg Config;
  const uint64_t WaitStart = monotonicNowMs();
  for (;;) {
    std::string ReadError;
    std::string Bytes;
    if (readFileBytes(Ledger.configPath(), Bytes, ReadError)) {
      if (!decodeWorkerConfig(Bytes, Config, ErrorOut))
        return 1;
      break;
    }
    if (!pathExists(Opts.StoreDir)) {
      ErrorOut = "store directory not found: " + Opts.StoreDir;
      return 2;
    }
    if (monotonicNowMs() - WaitStart >= Opts.ConfigWaitMs) {
      ErrorOut = "timed out waiting for coordinator config in " +
                 Ledger.serveDir();
      return 3;
    }
    sleepMs(Opts.PollMs);
  }
  if (!Ledger.openExisting(ErrorOut))
    return 1;

  // Replicate the campaign policy and prove it by digest: a worker built
  // from a different binary or config would compute different shards.
  ExecutionPolicy Policy;
  Policy.Jobs = Opts.Jobs;
  Policy.Seed = Config.Seed;
  Policy.TransformationLimit = Config.TransformationLimit;
  Policy.TargetDeadlineSteps = Config.TargetDeadlineSteps;
  Policy.FlakyRetries = Config.FlakyRetries;
  Policy.QuarantineThreshold = Config.QuarantineThreshold;
  Policy.Engine = static_cast<ExecEngine>(Config.Engine);
  Policy.UniformInputs = Config.UniformInputs ? Config.UniformInputs : 1;
  if (campaignIdFor(Policy) != Config.CampaignId) {
    ErrorOut = "campaign id mismatch: coordinator has " + Config.CampaignId +
               ", this worker derives " + campaignIdFor(Policy);
    return 1;
  }

  WorkerHelloMsg Hello;
  Hello.Worker = Opts.WorkerId;
  Hello.Pid = static_cast<uint64_t>(::getpid());
  std::string HelloError;
  atomicWriteFile(Ledger.helloPath(Opts.WorkerId), encodeWorkerHello(Hello),
                  HelloError);

  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Opts.CollectMetrics)
    Metrics.setEnabled(true);
  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{},
                        Config.FaultyFleet ? TargetFleet::faulty()
                                           : TargetFleet{});
  // Construction counters (corpus/tool building) are the coordinator's to
  // count — exactly once, like a serial run. Shard deltas start here.
  if (Opts.CollectMetrics)
    Metrics.reset();

  for (;;) {
    std::optional<ShardJobMsg> Job;
    if (!Ledger.lease(Opts.WorkerId, Config.LeaseTtlMs, Job, ErrorOut))
      return 1;
    if (!Job) {
      if (pathExists(Ledger.donePath()))
        return 0;
      sleepMs(Opts.PollMs);
      continue;
    }
    if (Opts.AbandonAfterShards && Shards >= Opts.AbandonAfterShards)
      return 0; // test hook: die holding the lease (kill -9 mid-shard)
    if (Job->CampaignId != Config.CampaignId) {
      ErrorOut = "leased job for foreign campaign " + Job->CampaignId;
      return 1;
    }
    const ToolConfig *Tool = Engine.findTool(Job->Tool);
    if (!Tool) {
      ErrorOut = "leased job names unknown tool " + Job->Tool;
      return 1;
    }

    if (Opts.CollectMetrics)
      Metrics.reset();
    std::vector<TestEvaluation> Evals = Engine.evaluateShard(
        *Tool, static_cast<size_t>(Job->WaveStart),
        static_cast<size_t>(Job->WaveEnd), Job->CrashesOnly != 0,
        Job->Sidelined);

    ShardResultMsg Result;
    Result.JobId = Job->JobId;
    Result.Generation = Job->Generation;
    Result.Worker = Opts.WorkerId;
    Result.CampaignId = Config.CampaignId;
    Result.Phase = Job->Phase;
    Result.WaveStart = Job->WaveStart;
    Result.WaveEnd = Job->WaveEnd;
    Result.MaskDigest = sidelinedDigest(Job->Sidelined);
    Result.Evals = std::move(Evals);
    if (Opts.CollectMetrics) {
      // The snapshot since the last reset IS this shard's delta. Gauges
      // are point-in-time (cache budgets etc.), not additive — strip
      // them so restore() at the coordinator cannot clobber its own.
      telemetry::MetricsSnapshot Delta = Metrics.snapshot();
      Delta.Gauges.clear();
      Result.MetricsJson = telemetry::metricsToJson(Delta);
    }

    const bool Last = Opts.MaxShards && Shards + 1 >= Opts.MaxShards;
    std::string Encoded = encodeShardResult(Result);
    if (Last && Opts.TruncateLastResult)
      Encoded.resize(Encoded.size() / 2); // test hook: torn publish
    if (!atomicWriteFile(Ledger.resultPath(Job->JobId, Job->Generation),
                         Encoded, ErrorOut))
      return 1;
    if (!(Last && Opts.TruncateLastResult) &&
        !Ledger.complete(Job->JobId, Job->Generation, ErrorOut))
      return 1;
    ++Shards;
    if (Last)
      return 0; // test hook: die at the shard boundary
  }
}
