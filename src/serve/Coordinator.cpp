//===- serve/Coordinator.cpp - Scale-out campaign coordinator -------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "serve/Coordinator.h"

#include "campaign/CampaignEngine.h"
#include "store/Serde.h"
#include "support/Telemetry.h"

#include <algorithm>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::serve;

namespace {

void sleepMs(uint64_t Ms) { ::usleep(static_cast<useconds_t>(Ms) * 1000); }

const LeaseEntry *findEntry(const LeaseLedgerMsg &Table, uint64_t JobId) {
  for (const LeaseEntry &Entry : Table.Entries)
    if (Entry.JobId == JobId)
      return &Entry;
  return nullptr;
}

} // namespace

ServeCoordinator::ServeCoordinator(CampaignEngine &EngineIn,
                                   ServeOptions OptsIn)
    : Engine(EngineIn), Opts(std::move(OptsIn)), Ledger(Opts.StoreDir) {}

ServeCoordinator::~ServeCoordinator() { shutdown(); }

size_t ServeCoordinator::liveWorkers() const {
  size_t Live = 0;
  for (const SpawnedWorker &W : Spawned)
    Live += W.Alive ? 1 : 0;
  return Live;
}

bool ServeCoordinator::start(const WorkerConfigMsg &ConfigIn,
                             std::string &ErrorOut) {
  Config = ConfigIn;
  if (!Ledger.initialize(ErrorOut))
    return false;
  // The config lands last: a worker that can read it is guaranteed a
  // complete deployment underneath.
  if (!atomicWriteFile(Ledger.configPath(), encodeWorkerConfig(Config),
                       ErrorOut))
    return false;
  Deployed = true;
  for (size_t I = 0; I < Opts.Workers; ++I)
    spawnWorker(I + 1);
  return true;
}

void ServeCoordinator::spawnWorker(uint64_t Id) {
  const std::string IdStr = std::to_string(Id);
  const std::string JobsStr = std::to_string(Opts.WorkerJobs);
  const std::string LogPath =
      Ledger.serveDir() + "/worker" + IdStr + ".log";
  pid_t Pid = ::fork();
  if (Pid == 0) {
    int LogFd = ::open(LogPath.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (LogFd >= 0) {
      ::dup2(LogFd, 1);
      ::dup2(LogFd, 2);
      ::close(LogFd);
    }
    const char *Argv[] = {"minispv",       "worker",
                          "--store",       Opts.StoreDir.c_str(),
                          "--worker-id",   IdStr.c_str(),
                          "--jobs",        JobsStr.c_str(),
                          nullptr};
    ::execv(Opts.MinispvPath.c_str(), const_cast<char *const *>(Argv));
    ::_exit(127);
  }
  if (Pid > 0) {
    SpawnedWorker W;
    W.Id = Id;
    W.Pid = Pid;
    W.Alive = true;
    Spawned.push_back(W);
  }
}

void ServeCoordinator::reapWorkers() {
  for (SpawnedWorker &W : Spawned) {
    if (!W.Alive)
      continue;
    int Status = 0;
    if (::waitpid(W.Pid, &Status, WNOHANG) == W.Pid) {
      W.Alive = false;
      if (Opts.ServeJournal) {
        obs::JournalEvent Event;
        Event.Kind = obs::JournalEventKind::WorkerExited;
        Event.Worker = W.Id;
        Event.Count = static_cast<uint64_t>(W.Pid);
        Opts.ServeJournal->append(Event);
      }
    }
  }
}

void ServeCoordinator::pollHellos() {
  if (!Opts.ServeJournal)
    return;
  DIR *D = ::opendir(Ledger.serveDir().c_str());
  if (!D)
    return;
  while (struct dirent *Entry = ::readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.rfind("hello-", 0) != 0)
      continue;
    std::string Bytes, Error;
    if (!readFileBytes(Ledger.serveDir() + "/" + Name, Bytes, Error))
      continue;
    WorkerHelloMsg Hello;
    if (!decodeWorkerHello(Bytes, Hello, Error))
      continue;
    if (!Attached.insert(Hello.Worker).second)
      continue;
    obs::JournalEvent Event;
    Event.Kind = obs::JournalEventKind::WorkerAttached;
    Event.Worker = Hello.Worker;
    Event.Count = Hello.Pid;
    Opts.ServeJournal->append(Event);
  }
  ::closedir(D);
}

void ServeCoordinator::journalShardEvent(obs::JournalEventKind Kind,
                                         uint64_t JobId, uint64_t Worker) {
  if (!Opts.ServeJournal)
    return;
  obs::JournalEvent Event;
  Event.Kind = Kind;
  Event.Worker = Worker;
  Event.Count = JobId;
  auto It = Jobs.find(JobId);
  if (It != Jobs.end()) {
    Event.Phase = It->second.Phase;
    Event.Wave = It->second.WaveEnd;
  }
  Opts.ServeJournal->append(Event);
}

void ServeCoordinator::journalNewLeases(const LeaseLedgerMsg &Table) {
  for (const LeaseEntry &Entry : Table.Entries) {
    if (Entry.State != LeaseState::Leased)
      continue;
    if (!SeenLeases.insert({Entry.JobId, Entry.Generation}).second)
      continue;
    journalShardEvent(obs::JournalEventKind::ShardLeased, Entry.JobId,
                      Entry.Worker);
  }
}

void ServeCoordinator::maybeKillWorker(const LeaseLedgerMsg &Table) {
  if (Killed || Opts.KillWorkerAfterShards == 0 ||
      Folded < Opts.KillWorkerAfterShards)
    return;
  for (const LeaseEntry &Entry : Table.Entries) {
    if (Entry.State != LeaseState::Leased)
      continue;
    for (SpawnedWorker &W : Spawned)
      if (W.Alive && W.Id == Entry.Worker) {
        ::kill(W.Pid, SIGKILL);
        Killed = true;
        return;
      }
  }
}

void ServeCoordinator::foldMetrics(const std::string &MetricsJson) {
  if (MetricsJson.empty())
    return;
  telemetry::MetricsSnapshot Delta;
  std::string Error;
  if (!telemetry::metricsFromJson(MetricsJson, Delta, Error))
    return;
  // Workers already strip gauges; strip again so a hand-rolled result
  // can never overwrite coordinator point-in-time values.
  Delta.Gauges.clear();
  telemetry::MetricsRegistry::global().restore(Delta);
}

ShardJobMsg ServeCoordinator::jobFor(const ShardRequest &Request,
                                     uint64_t JobId,
                                     uint64_t Generation) const {
  ShardJobMsg Job;
  Job.JobId = JobId;
  Job.Generation = Generation;
  Job.CampaignId = Config.CampaignId;
  Job.Phase = Request.Phase;
  Job.Tool = Request.Tool;
  Job.Count = Request.Count;
  Job.CrashesOnly = Request.CrashesOnly ? 1 : 0;
  Job.WaveStart = Request.WaveStart;
  Job.WaveEnd = Request.WaveEnd;
  Job.Sidelined = Request.Sidelined;
  return Job;
}

void ServeCoordinator::beginPhase(const ShardRequest &Prototype,
                                  size_t StartWave) {
  JobByWaveStart.clear();
  if (!Deployed)
    return;
  std::vector<ShardJobMsg> Batch;
  size_t Waves = 0;
  for (size_t W = StartWave; W < Prototype.Count;
       W += CampaignEngine::ShardSize)
    ++Waves;
  if (Waves == 0)
    return;
  uint64_t First = 0;
  std::string Error;
  if (!Ledger.allocateJobIds(Waves, First, Error))
    return;
  size_t Index = 0;
  for (size_t W = StartWave; W < Prototype.Count;
       W += CampaignEngine::ShardSize, ++Index) {
    const size_t End =
        std::min(W + CampaignEngine::ShardSize,
                 static_cast<size_t>(Prototype.Count));
    ShardRequest Request = Prototype;
    Request.WaveStart = W;
    Request.WaveEnd = End;
    ShardJobMsg Job = jobFor(Request, First + Index, 0);
    JobByWaveStart[Job.WaveStart] = Job.JobId;
    JobInfo Info;
    Info.Phase = Prototype.Phase;
    Info.WaveStart = Job.WaveStart;
    Info.WaveEnd = Job.WaveEnd;
    Info.Mask = Prototype.Sidelined;
    Jobs[Job.JobId] = std::move(Info);
    Batch.push_back(std::move(Job));
  }
  if (!Ledger.enqueue(Batch, Error))
    JobByWaveStart.clear(); // degrade: the engine computes every wave locally
}

bool ServeCoordinator::takeShard(const ShardRequest &Request,
                                 std::vector<TestEvaluation> &Out) {
  auto WaveIt = JobByWaveStart.find(Request.WaveStart);
  if (WaveIt == JobByWaveStart.end())
    return false;
  const uint64_t JobId = WaveIt->second;
  JobInfo &Info = Jobs[JobId];
  const uint64_t WantDigest = sidelinedDigest(Request.Sidelined);
  const uint64_t Entered = monotonicNowMs();
  const uint64_t StallMs = Opts.StallMs ? Opts.StallMs : 4 * Opts.LeaseTtlMs;
  std::string Error;
  for (;;) {
    LeaseLedgerMsg Table;
    if (!Ledger.snapshot(Table, Error))
      return false; // unreadable ledger: compute this shard locally
    const LeaseEntry *Entry = findEntry(Table, JobId);
    if (!Entry)
      return false;
    journalNewLeases(Table);

    // The serial quarantine mask moved past the mask this job was
    // enqueued under: requeue under the current mask with a bumped
    // generation, fencing any in-flight stale computation.
    if (Info.Mask != Request.Sidelined) {
      if (!Ledger.requeue(jobFor(Request, JobId, Entry->Generation + 1),
                          Error))
        return false;
      Info.Mask = Request.Sidelined;
      continue;
    }

    std::string Bytes, ReadError;
    if (readFileBytes(Ledger.resultPath(JobId, Entry->Generation), Bytes,
                      ReadError)) {
      ShardResultMsg Result;
      std::string DecodeError;
      if (decodeShardResult(Bytes, Result, DecodeError) &&
          Result.MaskDigest == WantDigest) {
        foldMetrics(Result.MetricsJson);
        // Mark Done coordinator-side: authoritative even when the worker
        // died between publishing the result and completing the lease.
        Ledger.complete(JobId, Entry->Generation, Error);
        journalShardEvent(obs::JournalEventKind::ShardCompleted, JobId,
                          Result.Worker);
        ++Folded;
        maybeKillWorker(Table);
        Out = std::move(Result.Evals);
        return true;
      }
      // Torn frame or a stale-mask result: retire it and fence.
      ::unlink(Ledger.resultPath(JobId, Entry->Generation).c_str());
      if (!Ledger.requeue(jobFor(Request, JobId, Entry->Generation + 1),
                          Error))
        return false;
      continue;
    }

    std::vector<LeaseEntry> Expired;
    if (Ledger.expireStale(Expired, Error))
      for (const LeaseEntry &E : Expired) {
        ++Expiries;
        journalShardEvent(obs::JournalEventKind::LeaseExpired, E.JobId,
                          E.Worker);
      }
    pollHellos();
    reapWorkers();
    maybeKillWorker(Table);

    const bool AllSpawnedDead = !Spawned.empty() && liveWorkers() == 0;
    if (AllSpawnedDead || monotonicNowMs() - Entered >= StallMs) {
      const ToolConfig *Tool = Engine.findTool(Request.Tool);
      if (!Tool)
        return false;
      Out = Engine.evaluateShard(
          *Tool, static_cast<size_t>(Request.WaveStart),
          static_cast<size_t>(Request.WaveEnd), Request.CrashesOnly,
          Request.Sidelined);
      LeaseLedgerMsg Fresh;
      if (Ledger.snapshot(Fresh, Error))
        if (const LeaseEntry *Now = findEntry(Fresh, JobId))
          Ledger.complete(JobId, Now->Generation, Error);
      journalShardEvent(obs::JournalEventKind::ShardCompleted, JobId,
                        /*Worker=*/0);
      ++Folded;
      return true;
    }
    sleepMs(Opts.PollMs);
  }
}

void ServeCoordinator::endPhase(const std::string & /*Phase*/,
                                bool /*Complete*/) {
  JobByWaveStart.clear();
}

void ServeCoordinator::shutdown() {
  if (Finished || !Deployed)
    return;
  Finished = true;
  std::string Error;
  atomicWriteFile(Ledger.donePath(), "done\n", Error);
  // Grace period for workers to drain, then force.
  const uint64_t Deadline = monotonicNowMs() + 10000;
  for (;;) {
    reapWorkers();
    if (liveWorkers() == 0)
      break;
    if (monotonicNowMs() >= Deadline) {
      for (SpawnedWorker &W : Spawned)
        if (W.Alive)
          ::kill(W.Pid, SIGKILL);
      for (SpawnedWorker &W : Spawned)
        if (W.Alive) {
          int Status = 0;
          ::waitpid(W.Pid, &Status, 0);
          W.Alive = false;
        }
      break;
    }
    sleepMs(Opts.PollMs);
  }
}
