//===- serve/LeaseLedger.h - Crash-safe shard lease ledger ------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe lease table coordinating shard work across processes,
/// living under `<store>/serve/`:
///
///   serve/ledger.bin     the lease table (one LeaseLedger frame)
///   serve/ledger.lock    flock guard for ledger read-modify-write
///   serve/config.msg     the WorkerConfig frame workers replicate
///   serve/jobs/<id>.job  one ShardJob frame per enqueued shard
///   serve/results/<id>-g<gen>.msg  ShardResult frames workers publish
///   serve/hello-<id>.msg WorkerHello frames (worker discovery)
///   serve/DONE           written at shutdown; workers drain and exit
///
/// Lease state machine: Queued → Leased (worker takes the lowest queued
/// job id, deadline = now + TTL) → Done (result published). A Leased
/// entry whose deadline passes reverts to Queued with Generation+1 — the
/// generation fences the dead worker's late completion or stale result
/// file, which are simply ignored. Because shard evaluation is a pure
/// deterministic function of (campaign config, wave bounds, mask), a
/// shard computed twice yields identical bytes, so expiry can never
/// double-count and a kill -9 mid-wave loses nothing: the shard is
/// re-leased and recomputed bit-identically.
///
/// Every mutation is a read-modify-write of the whole table under an
/// exclusive flock, persisted with the store's atomicWriteFile
/// (write-tmp/fsync/rename), so a crash at any point leaves a valid
/// ledger; the frame checksum rejects torn bytes from outside writers.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_LEASELEDGER_H
#define SERVE_LEASELEDGER_H

#include "serve/ShardProtocol.h"

#include <optional>
#include <string>
#include <vector>

namespace spvfuzz {
namespace serve {

/// Milliseconds on the machine-wide monotonic clock (CLOCK_MONOTONIC),
/// comparable across local processes — the ledger's only notion of time.
uint64_t monotonicNowMs();

class LeaseLedger {
public:
  explicit LeaseLedger(std::string StoreDir);

  const std::string &serveDir() const { return Dir; }
  std::string ledgerPath() const { return Dir + "/ledger.bin"; }
  std::string configPath() const { return Dir + "/config.msg"; }
  std::string donePath() const { return Dir + "/DONE"; }
  std::string jobPath(uint64_t JobId) const;
  std::string resultPath(uint64_t JobId, uint64_t Generation) const;
  std::string helloPath(uint64_t Worker) const;

  /// Coordinator: creates the serve layout fresh — serve/, jobs/,
  /// results/ and an empty ledger; any state from a previous deployment
  /// (jobs, results, hellos, DONE) is removed.
  bool initialize(std::string &ErrorOut);

  /// Worker: opens an existing deployment; false (without touching
  /// anything) when the serve directory or ledger is missing or corrupt.
  bool openExisting(std::string &ErrorOut);

  /// Coordinator: writes each job's frame then appends Queued entries to
  /// the ledger. Job ids must come from the ledger's NextJobId sequence
  /// (the coordinator assigns them).
  bool enqueue(const std::vector<ShardJobMsg> &Jobs, std::string &ErrorOut);

  /// Worker: leases the lowest-id Queued entry for \p Worker with
  /// deadline now + \p TtlMs, returning its job message. JobOut stays
  /// empty when nothing is queued (not an error).
  bool lease(uint64_t Worker, uint64_t TtlMs,
             std::optional<ShardJobMsg> &JobOut, std::string &ErrorOut);

  /// Marks (JobId, Generation) Done. A stale generation (the entry moved
  /// on after a lease expiry) is a fenced no-op, as is an unknown job.
  bool complete(uint64_t JobId, uint64_t Generation, std::string &ErrorOut);

  /// Coordinator: reverts every Leased entry whose deadline has passed to
  /// Queued with Generation+1, reporting the expired (pre-bump) entries.
  bool expireStale(std::vector<LeaseEntry> &ExpiredOut,
                   std::string &ErrorOut);

  /// Coordinator: force-requeues \p Job — rewrites its job frame (new
  /// mask, bumped generation) and resets its entry to Queued with that
  /// generation. Used when the serial quarantine mask moved past the mask
  /// a job was enqueued under, and to retire torn result files.
  bool requeue(const ShardJobMsg &Job, std::string &ErrorOut);

  /// Shared-lock snapshot of the whole table.
  bool snapshot(LeaseLedgerMsg &Out, std::string &ErrorOut);

  /// Allocates \p Count consecutive job ids (advances NextJobId).
  bool allocateJobIds(size_t Count, uint64_t &FirstOut,
                      std::string &ErrorOut);

private:
  /// Runs \p Mutate on the decoded table under an exclusive flock and
  /// persists the result atomically. Mutate returns false to skip the
  /// write-back (read-only outcome).
  template <typename Fn> bool withLedger(Fn Mutate, std::string &ErrorOut);

  std::string Dir;
};

} // namespace serve
} // namespace spvfuzz

#endif // SERVE_LEASELEDGER_H
