//===- serve/LeaseLedger.cpp - Crash-safe shard lease ledger --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "serve/LeaseLedger.h"

#include "store/Serde.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace spvfuzz;
using namespace spvfuzz::serve;

uint64_t serve::monotonicNowMs() {
  struct timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000 +
         static_cast<uint64_t>(Ts.tv_nsec) / 1000000;
}

namespace {

bool ensureDir(const std::string &Path, std::string &ErrorOut) {
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST)
    return true;
  ErrorOut = "cannot create directory " + Path + ": " + strerror(errno);
  return false;
}

void removeEntries(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return;
  while (struct dirent *Entry = ::readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name != "." && Name != "..")
      ::unlink((Dir + "/" + Name).c_str());
  }
  ::closedir(D);
}

/// Exclusive (or shared) flock on the ledger lock file, released on
/// destruction. flock locks attach to the open file description, so
/// independent opens exclude each other across both threads and
/// processes.
class ScopedLock {
public:
  ScopedLock(const std::string &Path, bool Exclusive) {
    Fd = ::open(Path.c_str(), O_CREAT | O_RDWR, 0644);
    if (Fd >= 0 && ::flock(Fd, Exclusive ? LOCK_EX : LOCK_SH) != 0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~ScopedLock() {
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
  }
  bool held() const { return Fd >= 0; }

private:
  int Fd = -1;
};

} // namespace

LeaseLedger::LeaseLedger(std::string StoreDir)
    : Dir(std::move(StoreDir) + "/serve") {}

std::string LeaseLedger::jobPath(uint64_t JobId) const {
  return Dir + "/jobs/" + std::to_string(JobId) + ".job";
}

std::string LeaseLedger::resultPath(uint64_t JobId,
                                    uint64_t Generation) const {
  return Dir + "/results/" + std::to_string(JobId) + "-g" +
         std::to_string(Generation) + ".msg";
}

std::string LeaseLedger::helloPath(uint64_t Worker) const {
  return Dir + "/hello-" + std::to_string(Worker) + ".msg";
}

bool LeaseLedger::initialize(std::string &ErrorOut) {
  if (!ensureDir(Dir, ErrorOut) || !ensureDir(Dir + "/jobs", ErrorOut) ||
      !ensureDir(Dir + "/results", ErrorOut))
    return false;
  removeEntries(Dir + "/jobs");
  removeEntries(Dir + "/results");
  DIR *D = ::opendir(Dir.c_str());
  if (D) {
    while (struct dirent *Entry = ::readdir(D)) {
      std::string Name = Entry->d_name;
      if (Name == "DONE" || Name.rfind("hello-", 0) == 0)
        ::unlink((Dir + "/" + Name).c_str());
    }
    ::closedir(D);
  }
  return atomicWriteFile(ledgerPath(), encodeLeaseLedger(LeaseLedgerMsg{}),
                         ErrorOut);
}

bool LeaseLedger::openExisting(std::string &ErrorOut) {
  std::string Bytes;
  if (!readFileBytes(ledgerPath(), Bytes, ErrorOut))
    return false;
  LeaseLedgerMsg Table;
  return decodeLeaseLedger(Bytes, Table, ErrorOut);
}

template <typename Fn>
bool LeaseLedger::withLedger(Fn Mutate, std::string &ErrorOut) {
  ScopedLock Lock(Dir + "/ledger.lock", /*Exclusive=*/true);
  if (!Lock.held()) {
    ErrorOut = "cannot lock lease ledger in " + Dir;
    return false;
  }
  std::string Bytes;
  if (!readFileBytes(ledgerPath(), Bytes, ErrorOut))
    return false;
  LeaseLedgerMsg Table;
  if (!decodeLeaseLedger(Bytes, Table, ErrorOut))
    return false;
  if (!Mutate(Table))
    return true; // read-only outcome: nothing to persist
  return atomicWriteFile(ledgerPath(), encodeLeaseLedger(Table), ErrorOut);
}

bool LeaseLedger::allocateJobIds(size_t Count, uint64_t &FirstOut,
                                 std::string &ErrorOut) {
  return withLedger(
      [&](LeaseLedgerMsg &Table) {
        FirstOut = Table.NextJobId;
        Table.NextJobId += Count;
        return true;
      },
      ErrorOut);
}

bool LeaseLedger::enqueue(const std::vector<ShardJobMsg> &Jobs,
                          std::string &ErrorOut) {
  // Job frames land before their ledger entries: a worker that sees an
  // entry is guaranteed a readable job file.
  for (const ShardJobMsg &Job : Jobs)
    if (!atomicWriteFile(jobPath(Job.JobId), encodeShardJob(Job), ErrorOut))
      return false;
  return withLedger(
      [&](LeaseLedgerMsg &Table) {
        for (const ShardJobMsg &Job : Jobs) {
          LeaseEntry Entry;
          Entry.JobId = Job.JobId;
          Entry.Generation = Job.Generation;
          Entry.State = LeaseState::Queued;
          Table.Entries.push_back(Entry);
        }
        return true;
      },
      ErrorOut);
}

bool LeaseLedger::lease(uint64_t Worker, uint64_t TtlMs,
                        std::optional<ShardJobMsg> &JobOut,
                        std::string &ErrorOut) {
  JobOut.reset();
  uint64_t LeasedJob = 0, LeasedGeneration = 0;
  bool Took = false;
  if (!withLedger(
          [&](LeaseLedgerMsg &Table) {
            LeaseEntry *Best = nullptr;
            for (LeaseEntry &Entry : Table.Entries)
              if (Entry.State == LeaseState::Queued &&
                  (!Best || Entry.JobId < Best->JobId))
                Best = &Entry;
            if (!Best)
              return false;
            Best->State = LeaseState::Leased;
            Best->Worker = Worker;
            Best->DeadlineMs = monotonicNowMs() + TtlMs;
            LeasedJob = Best->JobId;
            LeasedGeneration = Best->Generation;
            Took = true;
            return true;
          },
          ErrorOut))
    return false;
  if (!Took)
    return true;
  std::string Bytes;
  if (!readFileBytes(jobPath(LeasedJob), Bytes, ErrorOut))
    return false;
  ShardJobMsg Job;
  if (!decodeShardJob(Bytes, Job, ErrorOut))
    return false;
  // The job frame can lag the ledger by one requeue (frame rewritten
  // after the entry moved on); serve the ledger's generation so the
  // completion fence matches what the worker actually leased.
  Job.Generation = LeasedGeneration;
  JobOut = std::move(Job);
  return true;
}

bool LeaseLedger::complete(uint64_t JobId, uint64_t Generation,
                           std::string &ErrorOut) {
  return withLedger(
      [&](LeaseLedgerMsg &Table) {
        for (LeaseEntry &Entry : Table.Entries)
          if (Entry.JobId == JobId) {
            if (Entry.Generation != Generation ||
                Entry.State == LeaseState::Done)
              return false; // fenced stale completion (or already done)
            Entry.State = LeaseState::Done;
            return true;
          }
        return false;
      },
      ErrorOut);
}

bool LeaseLedger::expireStale(std::vector<LeaseEntry> &ExpiredOut,
                              std::string &ErrorOut) {
  ExpiredOut.clear();
  const uint64_t NowMs = monotonicNowMs();
  return withLedger(
      [&](LeaseLedgerMsg &Table) {
        for (LeaseEntry &Entry : Table.Entries)
          if (Entry.State == LeaseState::Leased && Entry.DeadlineMs <= NowMs) {
            ExpiredOut.push_back(Entry);
            Entry.State = LeaseState::Queued;
            ++Entry.Generation;
            Entry.Worker = 0;
            Entry.DeadlineMs = 0;
          }
        return !ExpiredOut.empty();
      },
      ErrorOut);
}

bool LeaseLedger::requeue(const ShardJobMsg &Job, std::string &ErrorOut) {
  if (!atomicWriteFile(jobPath(Job.JobId), encodeShardJob(Job), ErrorOut))
    return false;
  return withLedger(
      [&](LeaseLedgerMsg &Table) {
        for (LeaseEntry &Entry : Table.Entries)
          if (Entry.JobId == Job.JobId) {
            Entry.Generation = Job.Generation;
            Entry.State = LeaseState::Queued;
            Entry.Worker = 0;
            Entry.DeadlineMs = 0;
            return true;
          }
        return false;
      },
      ErrorOut);
}

bool LeaseLedger::snapshot(LeaseLedgerMsg &Out, std::string &ErrorOut) {
  ScopedLock Lock(Dir + "/ledger.lock", /*Exclusive=*/false);
  if (!Lock.held()) {
    ErrorOut = "cannot lock lease ledger in " + Dir;
    return false;
  }
  std::string Bytes;
  if (!readFileBytes(ledgerPath(), Bytes, ErrorOut))
    return false;
  return decodeLeaseLedger(Bytes, Out, ErrorOut);
}
