//===- serve/Coordinator.h - Scale-out campaign coordinator -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of `minispv serve`: a ShardProvider that turns
/// each evaluation phase into lease-ledger jobs (one per ShardSize wave),
/// lets worker processes compute them, and folds the published results
/// back into the engine's serial wave loop in wave order. Everything
/// decision-bearing — breaker commits, bug events, checkpoints, the
/// events.jsonl stream — stays in the engine's fold, so a K-worker run is
/// byte-identical to a serial one; the coordinator only moves where the
/// pure shard computation happens.
///
/// Fault tolerance: leases that outlive their TTL are expired and
/// re-queued with a bumped generation (fencing the dead worker's stale
/// output); torn or mask-stale result frames are retired the same way;
/// and if every spawned worker dies — or a shard stalls past StallMs —
/// the coordinator computes the shard inline, so `serve` always
/// terminates with the same output as `campaign`.
///
/// Scheduling events (worker attach/exit, leases, completions, expiries)
/// go to the separate serve.jsonl journal; they are timing-dependent and
/// never part of the equivalence surface.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_COORDINATOR_H
#define SERVE_COORDINATOR_H

#include "obs/Journal.h"
#include "serve/LeaseLedger.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <sys/types.h>

namespace spvfuzz {
namespace serve {

struct ServeOptions {
  std::string StoreDir;
  /// Worker processes to spawn via fork/exec of MinispvPath. 0 = attach
  /// mode: workers are started externally (the tests run them on
  /// threads) and the coordinator only leases and folds.
  size_t Workers = 2;
  /// --jobs passed to each spawned worker.
  size_t WorkerJobs = 1;
  /// Binary to exec for workers; defaults to this very binary.
  std::string MinispvPath = "/proc/self/exe";
  /// Lease TTL handed to workers; a worker silent past this is presumed
  /// dead and its shard re-queued.
  uint64_t LeaseTtlMs = 3000;
  /// Poll interval while waiting for a shard result.
  uint64_t PollMs = 10;
  /// Stall cutoff: a shard with no result after this long is computed
  /// inline by the coordinator. 0 defaults to 4 * LeaseTtlMs.
  uint64_t StallMs = 0;
  /// Test/CI hook: after this many folded shards, SIGKILL one spawned
  /// worker that currently holds a lease (0 = never). Exercises the
  /// expiry path deterministically enough for the smoke check.
  uint64_t KillWorkerAfterShards = 0;
  /// Scheduling-event journal (serve.jsonl); optional, not owned.
  obs::JournalWriter *ServeJournal = nullptr;
};

class ServeCoordinator : public ShardProvider {
public:
  ServeCoordinator(CampaignEngine &Engine, ServeOptions Opts);
  ~ServeCoordinator() override;

  /// Deploys: fresh serve layout, config frame for workers to replicate,
  /// then spawns Opts.Workers worker processes (their stdout/stderr land
  /// in `serve/worker<id>.log`).
  bool start(const WorkerConfigMsg &Config, std::string &ErrorOut);

  /// Writes the DONE marker and reaps spawned workers (SIGKILL after a
  /// grace period). Idempotent; also run by the destructor.
  void shutdown();

  // ShardProvider: the engine's wave loop drives these.
  void beginPhase(const ShardRequest &Prototype, size_t StartWave) override;
  bool takeShard(const ShardRequest &Request,
                 std::vector<TestEvaluation> &Out) override;
  void endPhase(const std::string &Phase, bool Complete) override;

  size_t shardsFolded() const { return Folded; }
  size_t leaseExpiries() const { return Expiries; }
  size_t liveWorkers() const;

private:
  struct SpawnedWorker {
    uint64_t Id = 0;
    pid_t Pid = -1;
    bool Alive = false;
  };
  /// What the coordinator remembers about an enqueued job: its phase
  /// identity for journaling and the quarantine mask it was enqueued
  /// under (to detect serial-mask drift).
  struct JobInfo {
    std::string Phase;
    uint64_t WaveStart = 0;
    uint64_t WaveEnd = 0;
    std::vector<std::string> Mask;
  };

  ShardJobMsg jobFor(const ShardRequest &Request, uint64_t JobId,
                     uint64_t Generation) const;
  void spawnWorker(uint64_t Id);
  void reapWorkers();
  void pollHellos();
  void journalNewLeases(const LeaseLedgerMsg &Table);
  void maybeKillWorker(const LeaseLedgerMsg &Table);
  void journalShardEvent(obs::JournalEventKind Kind, uint64_t JobId,
                         uint64_t Worker);
  /// Counter/histogram deltas a worker shipped with its result fold into
  /// the coordinator's registry, so metric totals match a serial run.
  void foldMetrics(const std::string &MetricsJson);

  CampaignEngine &Engine;
  ServeOptions Opts;
  LeaseLedger Ledger;
  WorkerConfigMsg Config;
  bool Deployed = false;
  bool Finished = false;

  std::vector<SpawnedWorker> Spawned;
  std::set<uint64_t> Attached;
  std::map<uint64_t, JobInfo> Jobs;
  std::map<uint64_t, uint64_t> JobByWaveStart;
  /// (JobId, Generation) leases already journaled as ShardLeased.
  std::set<std::pair<uint64_t, uint64_t>> SeenLeases;
  size_t Folded = 0;
  size_t Expiries = 0;
  bool Killed = false;
};

} // namespace serve
} // namespace spvfuzz

#endif // SERVE_COORDINATOR_H
