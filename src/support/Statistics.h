//===- support/Statistics.h - Statistics used by the evaluation -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Median and the one-sided Mann-Whitney U test, as used in Table 3 of the
/// paper to compare the bug-finding ability of two tool configurations.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATISTICS_H
#define SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace spvfuzz {

/// Returns the median of \p Values (not required to be sorted). For an even
/// number of elements the mean of the two middle elements is returned.
/// Returns 0.0 for an empty input.
double median(std::vector<double> Values);

/// Result of a one-sided Mann-Whitney U test of "population A is
/// stochastically larger than population B".
struct MannWhitneyResult {
  /// The U statistic for sample A.
  double U = 0.0;
  /// One-sided confidence, as a percentage in [0, 100], that A > B.
  /// Matches the presentation of Table 3 in the paper.
  double ConfidenceAGreater = 0.0;
  /// True if ConfidenceAGreater >= 50, i.e. the test leans towards A.
  bool AWins = false;
};

/// Runs the one-sided Mann-Whitney U test with tie correction and a normal
/// approximation (appropriate for the group counts used in the paper's
/// evaluation, which splits tests into 10 groups per configuration).
MannWhitneyResult mannWhitneyU(const std::vector<double> &A,
                               const std::vector<double> &B);

/// The standard normal cumulative distribution function.
double normalCdf(double Z);

} // namespace spvfuzz

#endif // SUPPORT_STATISTICS_H
