//===- support/Telemetry.h - Metrics registry -------------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe metrics registry: named counters, gauges and
/// histograms (with p50/p90/p99 summaries). Instrumented code paths across
/// the fuzzer, reducers, optimizer, interpreter and campaign drivers report
/// into the registry; the CLI and the bench binaries snapshot it, serialize
/// it to JSON (`--metrics-out`) and render it as a human-readable table
/// (`minispv report`).
///
/// The registry is disabled by default and the instrumentation hot paths
/// gate on a single relaxed atomic load, so an un-instrumented run (the
/// default for benches and unit tests) pays essentially nothing.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TELEMETRY_H
#define SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace spvfuzz {
namespace telemetry {

/// Summary of one histogram at snapshot time. Percentiles are estimated
/// from fixed log2-spaced buckets (count/sum/min/max are exact), so they
/// are independent of observation order and of how per-worker registries
/// were merged.
struct HistogramStats {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  double P50 = 0.0;
  double P90 = 0.0;
  double P99 = 0.0;
  /// The raw log2 bucket counts (NumHistogramBuckets entries, or empty for
  /// a snapshot parsed from pre-bucket JSON). Carrying the buckets makes
  /// snapshots restorable: restore() can merge them back into a live
  /// registry associatively, which summary percentiles alone cannot do.
  std::vector<uint64_t> Buckets;
};

/// A point-in-time copy of every metric, decoupled from the live registry.
/// This is also the exchange format: `metricsToJson` serializes one and
/// `metricsFromJson` (used by `minispv report`) parses one back.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramStats> Histograms;
};

/// The process-wide metrics registry.
class MetricsRegistry {
public:
  /// The singleton used by all instrumented code paths.
  static MetricsRegistry &global();

  /// Enables or disables collection. While disabled, add/set/observe are
  /// no-ops (callers are expected to gate on enabled() before building
  /// metric names, so disabled runs do not even pay for string formatting).
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Increments the counter \p Name by \p Delta.
  void add(std::string_view Name, uint64_t Delta = 1);

  /// Sets the gauge \p Name to \p Value.
  void set(std::string_view Name, double Value);

  /// Records \p Value into the histogram \p Name.
  void observe(std::string_view Name, double Value);

  /// Reads one counter (0 if absent). Works even while disabled, so tests
  /// and bench footers can read back what an enabled phase recorded.
  uint64_t counterValue(const std::string &Name) const;

  /// Copies out every metric.
  MetricsSnapshot snapshot() const;

  /// Drops all recorded values (the enabled flag is left untouched).
  void reset();

  /// Folds \p Other's metrics into this registry: counters add, histograms
  /// merge bucket-wise, gauges take \p Other's value on conflict. Histogram
  /// merging is associative and commutative (bucket counts are summed), so
  /// per-worker registries can be combined in any order — or any tree
  /// shape — and produce the same p50/p90/p99 snapshots. (Sum is a
  /// floating-point accumulation, associative up to rounding.) The enabled
  /// flags of both registries are ignored: merging is a bookkeeping step,
  /// not instrumentation.
  void mergeFrom(const MetricsRegistry &Other);

  /// Folds a snapshot back into the live registry (the resume path:
  /// counters add, gauges overwrite, histograms merge bucket-wise like
  /// mergeFrom). Snapshot histograms without bucket data are merged as a
  /// single observation mass at their mean — lossy, but only reachable for
  /// snapshots parsed from pre-bucket JSON.
  void restore(const MetricsSnapshot &Snapshot);

  /// Histogram bucket layout: bucket 0 holds values < 1 (including
  /// non-positive values); bucket i in [1, 64] holds [2^(i-1), 2^i); the
  /// last bucket holds anything >= 2^64. Percentiles interpolate linearly
  /// within a bucket and are clamped to [Min, Max].
  static constexpr size_t NumHistogramBuckets = 66;

private:
  struct Histogram {
    uint64_t Count = 0;
    double Sum = 0.0;
    double Min = 0.0;
    double Max = 0.0;
    std::vector<uint64_t> Buckets; // NumHistogramBuckets, lazily sized
  };

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, Histogram> Histograms;
};

/// Serializes \p Snapshot as pretty-printed JSON with top-level "counters",
/// "gauges" and "histograms" objects.
std::string metricsToJson(const MetricsSnapshot &Snapshot);

/// Parses JSON previously produced by metricsToJson. Returns false and sets
/// \p Error on malformed input.
bool metricsFromJson(const std::string &Json, MetricsSnapshot &Snapshot,
                     std::string &Error);

/// Renders \p Snapshot as the human-readable table printed by
/// `minispv report`.
std::string renderMetricsReport(const MetricsSnapshot &Snapshot);

/// Snapshots the global registry and writes it as JSON to \p Path.
/// Returns false and sets \p Error on I/O failure.
bool writeGlobalMetrics(const std::string &Path, std::string &Error);

} // namespace telemetry
} // namespace spvfuzz

#endif // SUPPORT_TELEMETRY_H
