//===- support/BinaryIO.h - Endian-stable binary primitives ----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level primitives for the persistent store's binary formats. All
/// multi-byte values are written little-endian one byte at a time, so the
/// on-disk format is identical on every host. ByteReader is fully
/// bounds-checked: a short or corrupt buffer produces a diagnostic (with
/// the failing offset) instead of undefined behaviour, and every
/// length-prefixed read validates the length against the bytes actually
/// remaining before allocating.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_BINARYIO_H
#define SUPPORT_BINARYIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace spvfuzz {

/// Appends little-endian values to a byte buffer.
class ByteWriter {
public:
  void u8(uint8_t Value) { Buf.push_back(static_cast<char>(Value)); }
  void u16(uint16_t Value) {
    u8(static_cast<uint8_t>(Value));
    u8(static_cast<uint8_t>(Value >> 8));
  }
  void u32(uint32_t Value) {
    u16(static_cast<uint16_t>(Value));
    u16(static_cast<uint16_t>(Value >> 16));
  }
  void u64(uint64_t Value) {
    u32(static_cast<uint32_t>(Value));
    u32(static_cast<uint32_t>(Value >> 32));
  }
  /// Length-prefixed string (u32 length + raw bytes).
  void str(const std::string &Value) {
    u32(static_cast<uint32_t>(Value.size()));
    Buf.append(Value);
  }
  void words(const std::vector<uint32_t> &Words) {
    u32(static_cast<uint32_t>(Words.size()));
    for (uint32_t Word : Words)
      u32(Word);
  }
  void raw(const std::string &Bytes) { Buf.append(Bytes); }

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader over a byte buffer. Every accessor returns false
/// (and records a diagnostic naming the offset) instead of reading past the
/// end; once an error is recorded, all subsequent reads fail fast.
class ByteReader {
public:
  ByteReader(const char *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::string &Bytes)
      : ByteReader(Bytes.data(), Bytes.size()) {}
  // The reader aliases the buffer; a temporary would dangle immediately.
  explicit ByteReader(std::string &&) = delete;

  bool u8(uint8_t &Out) {
    if (!need(1))
      return false;
    Out = static_cast<uint8_t>(Data[Pos++]);
    return true;
  }
  bool u16(uint16_t &Out) {
    uint8_t Lo = 0, Hi = 0;
    if (!u8(Lo) || !u8(Hi))
      return false;
    Out = static_cast<uint16_t>(Lo | (static_cast<uint16_t>(Hi) << 8));
    return true;
  }
  bool u32(uint32_t &Out) {
    uint16_t Lo = 0, Hi = 0;
    if (!u16(Lo) || !u16(Hi))
      return false;
    Out = Lo | (static_cast<uint32_t>(Hi) << 16);
    return true;
  }
  bool u64(uint64_t &Out) {
    uint32_t Lo = 0, Hi = 0;
    if (!u32(Lo) || !u32(Hi))
      return false;
    Out = Lo | (static_cast<uint64_t>(Hi) << 32);
    return true;
  }
  bool str(std::string &Out) {
    uint32_t Length = 0;
    if (!u32(Length) || !need(Length))
      return false;
    Out.assign(Data + Pos, Length);
    Pos += Length;
    return true;
  }
  bool words(std::vector<uint32_t> &Out) {
    uint32_t Count = 0;
    if (!u32(Count) || !need(static_cast<size_t>(Count) * 4))
      return false;
    Out.clear();
    Out.reserve(Count);
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t Word = 0;
      u32(Word);
      Out.push_back(Word);
    }
    return true;
  }

  /// Advances past \p Bytes bytes (e.g. a payload handled elsewhere).
  bool skip(size_t Bytes) {
    if (!need(Bytes))
      return false;
    Pos += Bytes;
    return true;
  }

  /// Validates a caller-decoded element count against the minimum bytes the
  /// elements must still occupy, so corrupt counts cannot trigger huge
  /// allocations.
  bool checkCount(uint64_t Count, size_t MinBytesPerElement) {
    if (Count <= remaining() / (MinBytesPerElement ? MinBytesPerElement : 1))
      return true;
    return failAt("implausible element count");
  }

  bool atEnd() const { return Pos == Size && Error.empty(); }
  size_t position() const { return Pos; }
  size_t remaining() const { return Size - Pos; }
  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }

  /// Records a semantic-validation failure at the current offset.
  bool failAt(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at byte " + std::to_string(Pos);
    return false;
  }

private:
  bool need(size_t Bytes) {
    if (!Error.empty())
      return false;
    if (Size - Pos >= Bytes)
      return true;
    return failAt("truncated input (need " + std::to_string(Bytes) +
                  " more bytes)");
  }

  const char *Data;
  size_t Size;
  size_t Pos = 0;
  std::string Error;
};

} // namespace spvfuzz

#endif // SUPPORT_BINARYIO_H
