//===- support/Telemetry.cpp - Metrics registry ---------------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

using namespace spvfuzz;
using namespace spvfuzz::telemetry;

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Instance;
  return Instance;
}

void MetricsRegistry::add(std::string_view Name, uint64_t Delta) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters[std::string(Name)] += Delta;
}

void MetricsRegistry::set(std::string_view Name, double Value) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Gauges[std::string(Name)] = Value;
}

namespace {

/// Index of the log2 bucket holding \p Value (see NumHistogramBuckets).
size_t bucketIndex(double Value) {
  if (!(Value >= 1.0))
    return 0; // negatives, zero, sub-1 values and NaN
  int Exponent = 0;
  std::frexp(Value, &Exponent); // Value = f * 2^Exponent, f in [0.5, 1)
  // Value >= 1 implies Exponent >= 1; bucket i covers [2^(i-1), 2^i).
  size_t Index = static_cast<size_t>(Exponent);
  return std::min(Index, MetricsRegistry::NumHistogramBuckets - 1);
}

/// Inclusive-ish bounds of bucket \p Index for interpolation.
void bucketBounds(size_t Index, double &Lo, double &Hi) {
  if (Index == 0) {
    Lo = 0.0;
    Hi = 1.0;
    return;
  }
  Lo = std::ldexp(1.0, static_cast<int>(Index) - 1);
  Hi = std::ldexp(1.0, static_cast<int>(Index));
}

} // namespace

void MetricsRegistry::observe(std::string_view Name, double Value) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Histogram &H = Histograms[std::string(Name)];
  if (H.Count == 0) {
    H.Min = Value;
    H.Max = Value;
    H.Buckets.assign(NumHistogramBuckets, 0);
  } else {
    H.Min = std::min(H.Min, Value);
    H.Max = std::max(H.Max, Value);
  }
  ++H.Count;
  H.Sum += Value;
  ++H.Buckets[bucketIndex(Value)];
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

namespace {

/// Percentile estimate from log2 buckets: walk to the bucket where the
/// cumulative count crosses the target rank, interpolate linearly within
/// it, and clamp to the exactly-tracked [Min, Max].
double bucketPercentile(const std::vector<uint64_t> &Buckets, uint64_t Count,
                        double Min, double Max, double Fraction) {
  if (Count == 0 || Buckets.empty())
    return 0.0;
  double TargetRank = Fraction * static_cast<double>(Count);
  uint64_t Cumulative = 0;
  for (size_t Index = 0; Index < Buckets.size(); ++Index) {
    if (Buckets[Index] == 0)
      continue;
    if (static_cast<double>(Cumulative + Buckets[Index]) >= TargetRank) {
      double Lo = 0.0, Hi = 0.0;
      bucketBounds(Index, Lo, Hi);
      double WithinBucket =
          (TargetRank - static_cast<double>(Cumulative)) /
          static_cast<double>(Buckets[Index]);
      double Estimate = Lo + WithinBucket * (Hi - Lo);
      return std::min(Max, std::max(Min, Estimate));
    }
    Cumulative += Buckets[Index];
  }
  return Max;
}

} // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot Snapshot;
  Snapshot.Counters = Counters;
  Snapshot.Gauges = Gauges;
  for (const auto &[Name, H] : Histograms) {
    HistogramStats Stats;
    Stats.Count = H.Count;
    Stats.Sum = H.Sum;
    Stats.Min = H.Min;
    Stats.Max = H.Max;
    Stats.Mean = H.Count ? H.Sum / static_cast<double>(H.Count) : 0.0;
    Stats.P50 = bucketPercentile(H.Buckets, H.Count, H.Min, H.Max, 0.50);
    Stats.P90 = bucketPercentile(H.Buckets, H.Count, H.Min, H.Max, 0.90);
    Stats.P99 = bucketPercentile(H.Buckets, H.Count, H.Min, H.Max, 0.99);
    Stats.Buckets = H.Buckets;
    Snapshot.Histograms[Name] = Stats;
  }
  return Snapshot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &Other) {
  if (&Other == this)
    return;
  std::scoped_lock Lock(Mutex, Other.Mutex);
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Other.Gauges)
    Gauges[Name] = Value;
  for (const auto &[Name, TheirHistogram] : Other.Histograms) {
    if (TheirHistogram.Count == 0)
      continue;
    Histogram &Ours = Histograms[Name];
    if (Ours.Count == 0) {
      Ours = TheirHistogram;
      continue;
    }
    Ours.Min = std::min(Ours.Min, TheirHistogram.Min);
    Ours.Max = std::max(Ours.Max, TheirHistogram.Max);
    Ours.Count += TheirHistogram.Count;
    Ours.Sum += TheirHistogram.Sum;
    for (size_t I = 0; I < Ours.Buckets.size(); ++I)
      Ours.Buckets[I] += TheirHistogram.Buckets[I];
  }
}

void MetricsRegistry::restore(const MetricsSnapshot &Snapshot) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &[Name, Value] : Snapshot.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Snapshot.Gauges)
    Gauges[Name] = Value;
  for (const auto &[Name, Stats] : Snapshot.Histograms) {
    if (Stats.Count == 0)
      continue;
    std::vector<uint64_t> TheirBuckets = Stats.Buckets;
    if (TheirBuckets.size() != NumHistogramBuckets) {
      // Pre-bucket snapshot: approximate as Count observations at the mean.
      TheirBuckets.assign(NumHistogramBuckets, 0);
      TheirBuckets[bucketIndex(Stats.Mean)] = Stats.Count;
    }
    Histogram &Ours = Histograms[Name];
    if (Ours.Count == 0) {
      Ours.Min = Stats.Min;
      Ours.Max = Stats.Max;
      Ours.Count = Stats.Count;
      Ours.Sum = Stats.Sum;
      Ours.Buckets = std::move(TheirBuckets);
      continue;
    }
    Ours.Min = std::min(Ours.Min, Stats.Min);
    Ours.Max = std::max(Ours.Max, Stats.Max);
    Ours.Count += Stats.Count;
    Ours.Sum += Stats.Sum;
    for (size_t I = 0; I < Ours.Buckets.size(); ++I)
      Ours.Buckets[I] += TheirBuckets[I];
  }
}

//===----------------------------------------------------------------------===//
// JSON serialization
//===----------------------------------------------------------------------===//

namespace {

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string formatNumber(double Value) {
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  return Buf;
}

} // namespace

std::string telemetry::metricsToJson(const MetricsSnapshot &Snapshot) {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Snapshot.Counters) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    appendJsonString(Out, Name);
    Out += ": " + std::to_string(Value);
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Snapshot.Gauges) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    appendJsonString(Out, Name);
    Out += ": " + formatNumber(Value);
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Snapshot.Histograms) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    appendJsonString(Out, Name);
    Out += ": {\"count\": " + std::to_string(H.Count);
    Out += ", \"sum\": " + formatNumber(H.Sum);
    Out += ", \"min\": " + formatNumber(H.Min);
    Out += ", \"max\": " + formatNumber(H.Max);
    Out += ", \"mean\": " + formatNumber(H.Mean);
    Out += ", \"p50\": " + formatNumber(H.P50);
    Out += ", \"p90\": " + formatNumber(H.P90);
    Out += ", \"p99\": " + formatNumber(H.P99);
    if (!H.Buckets.empty()) {
      // Sparse "index:count" pairs — most of the 66 log2 buckets are empty.
      std::string Sparse;
      for (size_t I = 0; I < H.Buckets.size(); ++I) {
        if (H.Buckets[I] == 0)
          continue;
        if (!Sparse.empty())
          Sparse += ",";
        Sparse += std::to_string(I) + ":" + std::to_string(H.Buckets[I]);
      }
      Out += ", \"buckets\": ";
      appendJsonString(Out, Sparse);
    }
    Out += "}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON parsing (the subset metricsToJson emits)
//===----------------------------------------------------------------------===//

namespace {

/// A recursive-descent parser for the JSON subset the registry emits:
/// objects, strings and numbers. No arrays, booleans or nulls.
class MetricsJsonParser {
public:
  MetricsJsonParser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(MetricsSnapshot &Snapshot) {
    skipSpace();
    if (!expect('{'))
      return false;
    if (peek() == '}')
      return advance(), true;
    do {
      std::string Section;
      if (!parseString(Section) || !expect(':'))
        return false;
      if (Section == "counters") {
        if (!parseFlatObject([&](const std::string &Name, double Value) {
              Snapshot.Counters[Name] = static_cast<uint64_t>(Value);
            }))
          return false;
      } else if (Section == "gauges") {
        if (!parseFlatObject([&](const std::string &Name, double Value) {
              Snapshot.Gauges[Name] = Value;
            }))
          return false;
      } else if (Section == "histograms") {
        if (!parseHistograms(Snapshot))
          return false;
      } else {
        return fail("unknown section '" + Section + "'");
      }
    } while (consume(','));
    return expect('}');
  }

private:
  bool parseFlatObject(
      const std::function<void(const std::string &, double)> &Emit) {
    if (!expect('{'))
      return false;
    if (consume('}'))
      return true;
    do {
      std::string Name;
      double Value = 0.0;
      if (!parseString(Name) || !expect(':') || !parseNumber(Value))
        return false;
      Emit(Name, Value);
    } while (consume(','));
    return expect('}');
  }

  bool parseHistograms(MetricsSnapshot &Snapshot) {
    if (!expect('{'))
      return false;
    if (consume('}'))
      return true;
    do {
      std::string Name;
      if (!parseString(Name) || !expect(':'))
        return false;
      HistogramStats Stats;
      if (!parseHistogramObject(Stats))
        return false;
      Snapshot.Histograms[Name] = Stats;
    } while (consume(','));
    return expect('}');
  }

  /// One histogram's object: numeric summary fields plus the optional
  /// string-valued sparse "buckets" field.
  bool parseHistogramObject(HistogramStats &Stats) {
    if (!expect('{'))
      return false;
    if (consume('}'))
      return true;
    do {
      std::string Field;
      if (!parseString(Field) || !expect(':'))
        return false;
      if (Field == "buckets") {
        std::string Sparse;
        if (!parseString(Sparse))
          return false;
        Stats.Buckets.assign(MetricsRegistry::NumHistogramBuckets, 0);
        size_t Cursor = 0;
        while (Cursor < Sparse.size()) {
          size_t Colon = Sparse.find(':', Cursor);
          if (Colon == std::string::npos)
            return fail("malformed buckets field");
          size_t Comma = Sparse.find(',', Colon);
          if (Comma == std::string::npos)
            Comma = Sparse.size();
          size_t Index = static_cast<size_t>(
              std::strtoul(Sparse.substr(Cursor, Colon - Cursor).c_str(),
                           nullptr, 10));
          if (Index >= Stats.Buckets.size())
            return fail("bucket index out of range");
          Stats.Buckets[Index] = std::strtoull(
              Sparse.substr(Colon + 1, Comma - Colon - 1).c_str(), nullptr,
              10);
          Cursor = Comma + 1;
        }
        continue;
      }
      double Value = 0.0;
      if (!parseNumber(Value))
        return false;
      if (Field == "count")
        Stats.Count = static_cast<uint64_t>(Value);
      else if (Field == "sum")
        Stats.Sum = Value;
      else if (Field == "min")
        Stats.Min = Value;
      else if (Field == "max")
        Stats.Max = Value;
      else if (Field == "mean")
        Stats.Mean = Value;
      else if (Field == "p50")
        Stats.P50 = Value;
      else if (Field == "p90")
        Stats.P90 = Value;
      else if (Field == "p99")
        Stats.P99 = Value;
    } while (consume(','));
    return expect('}');
  }

  bool parseString(std::string &Out) {
    skipSpace();
    if (peek() != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        char E = Text[Pos++];
        switch (E) {
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u':
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          Out += static_cast<char>(
              std::strtoul(Text.substr(Pos, 4).c_str(), nullptr, 16));
          Pos += 4;
          break;
        default:
          Out += E;
        }
      } else {
        Out += C;
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseNumber(double &Out) {
    skipSpace();
    size_t End = Pos;
    while (End < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
            Text[End] == 'e' || Text[End] == 'E'))
      ++End;
    if (End == Pos)
      return fail("expected number");
    Out = std::strtod(Text.substr(Pos, End - Pos).c_str(), nullptr);
    Pos = End;
    return true;
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }
  void advance() { ++Pos; }
  bool consume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  bool expect(char C) {
    if (consume(C))
      return true;
    return fail(std::string("expected '") + C + "'");
  }
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  bool fail(const std::string &Message) {
    if (Error.empty()) {
      // Line-accurate position so a truncated or hand-edited metrics file
      // points straight at the damage.
      size_t Line = 1, Column = 1;
      for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
        if (Text[I] == '\n') {
          ++Line;
          Column = 1;
        } else {
          ++Column;
        }
      }
      Error = Message + " at line " + std::to_string(Line) + ", column " +
              std::to_string(Column);
    }
    return false;
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool telemetry::metricsFromJson(const std::string &Json,
                                MetricsSnapshot &Snapshot,
                                std::string &Error) {
  Error.clear();
  MetricsJsonParser Parser(Json, Error);
  return Parser.parse(Snapshot);
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

std::string telemetry::renderMetricsReport(const MetricsSnapshot &Snapshot) {
  std::ostringstream Out;
  char Line[256];

  if (!Snapshot.Counters.empty()) {
    size_t Width = 7; // strlen("counter")
    for (const auto &[Name, Value] : Snapshot.Counters)
      Width = std::max(Width, Name.size());
    std::snprintf(Line, sizeof(Line), "%-*s  %12s\n",
                  static_cast<int>(Width), "counter", "value");
    Out << Line;
    for (const auto &[Name, Value] : Snapshot.Counters) {
      std::snprintf(Line, sizeof(Line), "%-*s  %12llu\n",
                    static_cast<int>(Width), Name.c_str(),
                    static_cast<unsigned long long>(Value));
      Out << Line;
    }
  }

  if (!Snapshot.Gauges.empty()) {
    if (!Snapshot.Counters.empty())
      Out << "\n";
    size_t Width = 5; // strlen("gauge")
    for (const auto &[Name, Value] : Snapshot.Gauges)
      Width = std::max(Width, Name.size());
    std::snprintf(Line, sizeof(Line), "%-*s  %12s\n",
                  static_cast<int>(Width), "gauge", "value");
    Out << Line;
    for (const auto &[Name, Value] : Snapshot.Gauges) {
      std::snprintf(Line, sizeof(Line), "%-*s  %12.3f\n",
                    static_cast<int>(Width), Name.c_str(), Value);
      Out << Line;
    }
  }

  if (!Snapshot.Histograms.empty()) {
    if (!Snapshot.Counters.empty() || !Snapshot.Gauges.empty())
      Out << "\n";
    size_t Width = 9; // strlen("histogram")
    for (const auto &[Name, H] : Snapshot.Histograms)
      Width = std::max(Width, Name.size());
    std::snprintf(Line, sizeof(Line),
                  "%-*s  %8s %10s %10s %10s %10s %10s %10s\n",
                  static_cast<int>(Width), "histogram", "count", "min",
                  "mean", "p50", "p90", "p99", "max");
    Out << Line;
    for (const auto &[Name, H] : Snapshot.Histograms) {
      std::snprintf(Line, sizeof(Line),
                    "%-*s  %8llu %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                    static_cast<int>(Width), Name.c_str(),
                    static_cast<unsigned long long>(H.Count), H.Min, H.Mean,
                    H.P50, H.P90, H.P99, H.Max);
      Out << Line;
    }
  }

  if (Snapshot.Counters.empty() && Snapshot.Gauges.empty() &&
      Snapshot.Histograms.empty())
    Out << "(no metrics recorded)\n";
  return Out.str();
}

bool telemetry::writeGlobalMetrics(const std::string &Path,
                                   std::string &Error) {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << metricsToJson(MetricsRegistry::global().snapshot());
  if (!Out.good()) {
    Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}
