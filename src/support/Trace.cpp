//===- support/Trace.cpp - Structured span/event tracing ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cmath>
#include <cstdio>

using namespace spvfuzz;
using namespace spvfuzz::telemetry;

Tracer &Tracer::global() {
  static Tracer Instance;
  return Instance;
}

bool Tracer::open(const std::string &Path, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sink.is_open())
    Sink.close();
  Sink.open(Path, std::ios::trunc);
  if (!Sink) {
    Error = "cannot open '" + Path + "' for writing";
    Enabled.store(false, std::memory_order_relaxed);
    return false;
  }
  Epoch = std::chrono::steady_clock::now();
  Enabled.store(true, std::memory_order_relaxed);
  return true;
}

void Tracer::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Enabled.store(false, std::memory_order_relaxed);
  if (Sink.is_open()) {
    Sink.flush();
    Sink.close();
  }
}

uint64_t Tracer::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void Tracer::event(std::string_view Name,
                   std::initializer_list<TraceField> Fields) {
  if (!enabled())
    return;
  writeRecord("event", Name, nowUs(), Fields.begin(), Fields.size(),
              /*DurUs=*/0, /*HasDur=*/false);
}

void Tracer::span(std::string_view Name, uint64_t StartUs,
                  const std::vector<TraceField> &Fields) {
  if (!enabled())
    return;
  uint64_t EndUs = nowUs();
  uint64_t DurUs = EndUs > StartUs ? EndUs - StartUs : 0;
  writeRecord("span", Name, StartUs, Fields.data(), Fields.size(), DurUs,
              /*HasDur=*/true);
}

namespace {

void appendQuoted(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double Value) {
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
    Out += Buf;
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Out += Buf;
}

} // namespace

void Tracer::writeRecord(std::string_view Type, std::string_view Name,
                         uint64_t TsUs, const TraceField *Fields,
                         size_t NumFields, uint64_t DurUs, bool HasDur) {
  std::string Line;
  Line.reserve(128);
  Line += "{\"type\":";
  appendQuoted(Line, Type);
  Line += ",\"ts_us\":" + std::to_string(TsUs);
  if (HasDur)
    Line += ",\"dur_us\":" + std::to_string(DurUs);
  Line += ",\"name\":";
  appendQuoted(Line, Name);
  for (size_t I = 0; I < NumFields; ++I) {
    const TraceField &F = Fields[I];
    Line += ',';
    appendQuoted(Line, F.Key);
    Line += ':';
    if (F.IsNumber)
      appendNumber(Line, F.Number);
    else
      appendQuoted(Line, F.Text);
  }
  Line += "}\n";

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sink.is_open())
    Sink << Line;
}
