//===- support/Trace.cpp - Hierarchical span/event tracing ----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cmath>
#include <cstdio>

using namespace spvfuzz;
using namespace spvfuzz::telemetry;

namespace {

/// Per-thread span stack and phase attribution. Spans are strictly
/// block-scoped, so a plain vector mirrors the call structure; the phase
/// is the innermost open TracePhaseScope's label.
thread_local std::vector<uint64_t> ThreadSpanStack;
thread_local std::string ThreadPhase;

} // namespace

uint64_t telemetry::currentSpanId() {
  return ThreadSpanStack.empty() ? 0 : ThreadSpanStack.back();
}

const std::string &telemetry::currentTracePhase() { return ThreadPhase; }

Tracer &Tracer::global() {
  static Tracer Instance;
  return Instance;
}

bool Tracer::open(const std::string &Path, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sink.is_open())
    Sink.close();
  Sink.open(Path, std::ios::trunc);
  if (!Sink) {
    Error = "cannot open '" + Path + "' for writing";
    Enabled.store(false, std::memory_order_relaxed);
    return false;
  }
  Epoch = std::chrono::steady_clock::now();
  Enabled.store(true, std::memory_order_relaxed);
  return true;
}

void Tracer::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Enabled.store(false, std::memory_order_relaxed);
  if (Sink.is_open()) {
    Sink.flush();
    Sink.close();
  }
}

uint64_t Tracer::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void Tracer::event(std::string_view Name,
                   std::initializer_list<TraceField> Fields) {
  if (!enabled())
    return;
  writeRecord("event", Name, nowUs(), Fields.begin(), Fields.size(),
              /*DurUs=*/0, /*HasDur=*/false, /*Id=*/0, currentSpanId(),
              currentTracePhase());
}

void Tracer::span(std::string_view Name, uint64_t StartUs, uint64_t Id,
                  uint64_t ParentId, std::string_view Phase,
                  const std::vector<TraceField> &Fields) {
  if (!enabled())
    return;
  uint64_t EndUs = nowUs();
  uint64_t DurUs = EndUs > StartUs ? EndUs - StartUs : 0;
  writeRecord("span", Name, StartUs, Fields.data(), Fields.size(), DurUs,
              /*HasDur=*/true, Id, ParentId, Phase);
}

namespace {

void appendQuoted(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double Value) {
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
    Out += Buf;
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Out += Buf;
}

} // namespace

void Tracer::writeRecord(std::string_view Type, std::string_view Name,
                         uint64_t TsUs, const TraceField *Fields,
                         size_t NumFields, uint64_t DurUs, bool HasDur,
                         uint64_t Id, uint64_t ParentId,
                         std::string_view Phase) {
  std::string Line;
  Line.reserve(160);
  Line += "{\"type\":";
  appendQuoted(Line, Type);
  Line += ",\"ts_us\":" + std::to_string(TsUs);
  if (HasDur)
    Line += ",\"dur_us\":" + std::to_string(DurUs);
  if (Id != 0 || ParentId != 0) {
    Line += ",\"id\":" + std::to_string(Id);
    Line += ",\"parent\":" + std::to_string(ParentId);
  }
  if (!Phase.empty()) {
    Line += ",\"phase\":";
    appendQuoted(Line, Phase);
  }
  Line += ",\"name\":";
  appendQuoted(Line, Name);
  for (size_t I = 0; I < NumFields; ++I) {
    const TraceField &F = Fields[I];
    Line += ',';
    appendQuoted(Line, F.Key);
    Line += ':';
    if (F.IsNumber)
      appendNumber(Line, F.Number);
    else
      appendQuoted(Line, F.Text);
  }
  Line += "}\n";

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sink.is_open())
    Sink << Line;
}

TraceSpan::TraceSpan(std::string_view Name, uint64_t ParentOverride)
    : Name(Name), Active(Tracer::global().enabled()) {
  if (!Active)
    return;
  Tracer &T = Tracer::global();
  StartUs = T.nowUs();
  Parent = ParentOverride == UseStack ? currentSpanId() : ParentOverride;
  Id = T.allocateSpanId();
  Phase = currentTracePhase();
  ThreadSpanStack.push_back(Id);
}

TraceSpan::~TraceSpan() {
  if (!Active)
    return;
  // Pop unconditionally (the stack must stay balanced even if the sink was
  // closed while this span was open).
  if (!ThreadSpanStack.empty() && ThreadSpanStack.back() == Id)
    ThreadSpanStack.pop_back();
  if (Tracer::global().enabled())
    Tracer::global().span(Name, StartUs, Id, Parent, Phase, Fields);
}

TracePhaseScope::TracePhaseScope(std::string_view Phase)
    : Active(Tracer::global().enabled()) {
  if (!Active)
    return;
  Previous = ThreadPhase;
  ThreadPhase.assign(Phase.data(), Phase.size());
}

TracePhaseScope::~TracePhaseScope() {
  if (Active)
    ThreadPhase = std::move(Previous);
}
