//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PCG32 random number generator.
///
/// All randomized components of the fuzzer are driven through this class so
/// that a (seed, tool version) pair identifies a test case exactly, as
/// required for the replay-based reduction of transformation sequences.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_RNG_H
#define SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace spvfuzz {

/// Deterministic PCG32 generator (O'Neill's PCG-XSH-RR 64/32 variant).
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the generator from \p Seed, discarding all state.
  void reseed(uint64_t Seed) {
    State = 0;
    next();
    State += 0x853c49e6748fea9bULL ^ Seed;
    next();
  }

  /// Returns the next raw 32-bit output.
  uint32_t next() {
    uint64_t Old = State;
    State = Old * 6364136223846793005ULL + 1442695040888963407ULL;
    uint32_t XorShifted = static_cast<uint32_t>(((Old >> 18U) ^ Old) >> 27U);
    uint32_t Rot = static_cast<uint32_t>(Old >> 59U);
    return (XorShifted >> Rot) | (XorShifted << ((32U - Rot) & 31U));
  }

  /// Returns a uniform integer in the inclusive range [\p Lo, \p Hi].
  uint32_t uniform(uint32_t Lo, uint32_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi) - Lo + 1;
    // Debiased modulo is unnecessary here: statistical perfection is not
    // required, determinism is.
    return Lo + static_cast<uint32_t>(next() % Span);
  }

  /// Returns a uniform index into a container of \p Size elements.
  size_t index(size_t Size) {
    assert(Size > 0 && "cannot index an empty container");
    return static_cast<size_t>(next()) % Size;
  }

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(uint32_t Percent) {
    assert(Percent <= 100 && "percentage out of range");
    return uniform(0, 99) < Percent;
  }

  /// Returns true with probability 1/2.
  bool flip() { return (next() & 1U) != 0; }

  /// Picks a uniformly random element of \p Pool (which must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Pool) {
    return Pool[index(Pool.size())];
  }

  /// Fisher-Yates shuffles \p Pool in place.
  template <typename T> void shuffle(std::vector<T> &Pool) {
    if (Pool.size() < 2)
      return;
    for (size_t I = Pool.size() - 1; I > 0; --I)
      std::swap(Pool[I], Pool[index(I + 1)]);
  }

  /// Derives an independent child generator; used to give each fuzzer pass
  /// its own stream so that adding randomness to one pass does not perturb
  /// the decisions of another.
  Rng fork() { return Rng((static_cast<uint64_t>(next()) << 32) | next()); }

private:
  uint64_t State = 0;
};

} // namespace spvfuzz

#endif // SUPPORT_RNG_H
