//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace spvfuzz;

ThreadPool::ThreadPool(size_t WorkerCount) {
  if (WorkerCount == 0)
    WorkerCount = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(WorkerCount);
  for (size_t I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Busy == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++Busy;
    }
    // A job is a packaged_task wrapper: it never throws (exceptions land in
    // the associated future).
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Busy;
      if (Queue.empty() && Busy == 0)
        Idle.notify_all();
    }
  }
}
