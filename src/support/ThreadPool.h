//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool used by the campaign engine to fan out per-test
/// jobs. Design points that matter for deterministic campaigns:
///
///  - submit() returns a std::future, so callers aggregate results in
///    *submission* order regardless of completion order — the mechanism by
///    which an N-thread campaign is bit-identical to a serial one.
///  - Exceptions thrown by a job are captured in its future and rethrown
///    from get() on the aggregating thread; they never kill a worker.
///  - Cancellation is cooperative: requestCancel() raises a flag that jobs
///    poll via cancelRequested(); queued jobs still run (so every future
///    becomes ready) but are expected to return early.
///  - The destructor drains the queue: all submitted jobs execute before
///    the workers join, so no future is ever abandoned mid-flight.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_THREADPOOL_H
#define SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace spvfuzz {

class ThreadPool {
public:
  /// Spawns \p Workers worker threads; 0 means one per hardware thread.
  explicit ThreadPool(size_t Workers = 0);

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Runs every queued job to completion, then joins the workers.
  ~ThreadPool();

  size_t workerCount() const { return Workers.size(); }

  /// Enqueues \p Job and returns a future for its result. The future
  /// observes the job's return value or its thrown exception.
  template <typename Fn>
  auto submit(Fn &&Job) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // packaged_task is move-only; std::function requires copyable callables,
    // so the task rides in a shared_ptr.
    auto Task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(Job));
    std::future<Result> Future = Task->get_future();
    enqueue([Task]() { (*Task)(); });
    return Future;
  }

  /// Raises the cooperative cancellation flag. Jobs already queued still
  /// run (their futures must become ready), but well-behaved jobs check
  /// cancelRequested() and return early.
  void requestCancel() { Cancel.store(true, std::memory_order_release); }
  bool cancelRequested() const {
    return Cancel.load(std::memory_order_acquire);
  }
  /// Lowers the cancellation flag again (a pool outlives many campaigns).
  void clearCancel() { Cancel.store(false, std::memory_order_release); }

  /// Blocks until the queue is empty and every worker is idle.
  void wait();

private:
  void enqueue(std::function<void()> Job);
  void workerLoop();

  std::vector<std::thread> Workers;
  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  size_t Busy = 0;
  bool Stopping = false;
  std::atomic<bool> Cancel{false};
};

} // namespace spvfuzz

#endif // SUPPORT_THREADPOOL_H
