//===- support/Trace.h - Hierarchical span/event tracing --------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured tracer that writes one JSON object per line (JSONL) to a
/// configurable sink (`--trace-out`). Two record shapes:
///
///   {"type":"event","ts_us":<t>,"id":0,"parent":<p>,"phase":"..",
///    "name":"...", <fields>...}
///   {"type":"span","ts_us":<start>,"dur_us":<d>,"id":<i>,"parent":<p>,
///    "phase":"..","name":"...", <fields>...}
///
/// Tracing v2 is hierarchical: every span carries a process-unique id and
/// the id of the span that was open on the same logical flow when it
/// started (0 = root). Parents come from a per-thread span stack, so
/// nesting is free for same-thread spans; cross-thread children (worker
/// jobs forked from a coordinator wave) pass the parent id explicitly.
/// Records also carry a phase attribution ("fuzz", "scan", "reduce",
/// "dedup") from the innermost TracePhaseScope on the recording thread,
/// which is what `minispv report --trace` groups time by.
///
/// Timestamps are microseconds on the steady clock, relative to the moment
/// the sink was opened. Spans are emitted on destruction of a TraceSpan
/// (RAII), so a span line appears *after* any events or child spans
/// recorded inside it — readers must collect ids before resolving parents.
///
/// Like the metrics registry, the tracer is disabled until a sink is
/// opened and instrumentation gates on a relaxed atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TRACE_H
#define SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace spvfuzz {
namespace telemetry {

/// One key/value attribute on a trace record. Values are either text or
/// numbers (numbers are emitted unquoted).
struct TraceField {
  TraceField(std::string_view Key, std::string_view Text)
      : Key(Key), Text(Text), IsNumber(false) {}
  TraceField(std::string_view Key, const char *Text)
      : Key(Key), Text(Text), IsNumber(false) {}
  template <typename NumberT,
            typename = std::enable_if_t<std::is_arithmetic_v<NumberT>>>
  TraceField(std::string_view Key, NumberT Number)
      : Key(Key), Number(static_cast<double>(Number)), IsNumber(true) {}

  std::string Key;
  std::string Text;
  double Number = 0.0;
  bool IsNumber;
};

/// The innermost span id on the calling thread's span stack (0 if none).
/// New spans and events adopt it as their parent.
uint64_t currentSpanId();

/// The calling thread's phase attribution (empty if none).
const std::string &currentTracePhase();

/// The process-wide tracer.
class Tracer {
public:
  static Tracer &global();

  /// Opens (truncating) \p Path as the JSONL sink and enables tracing.
  /// Returns false and sets \p Error on failure.
  bool open(const std::string &Path, std::string &Error);

  /// Flushes and closes the sink; tracing is disabled again.
  void close();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Writes an event record. Parent and phase come from the calling
  /// thread's span stack and phase scope.
  void event(std::string_view Name,
             std::initializer_list<TraceField> Fields = {});

  /// Writes a span record covering [\p StartUs, now] with identity \p Id,
  /// parent \p ParentId (0 = root) and phase attribution \p Phase.
  void span(std::string_view Name, uint64_t StartUs, uint64_t Id,
            uint64_t ParentId, std::string_view Phase,
            const std::vector<TraceField> &Fields);

  /// Allocates a process-unique span id (never 0).
  uint64_t allocateSpanId() {
    return NextSpanId.fetch_add(1, std::memory_order_relaxed);
  }

  /// Microseconds since the sink was opened.
  uint64_t nowUs() const;

private:
  void writeRecord(std::string_view Type, std::string_view Name,
                   uint64_t TsUs, const TraceField *Fields, size_t NumFields,
                   uint64_t DurUs, bool HasDur, uint64_t Id,
                   uint64_t ParentId, std::string_view Phase);

  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> NextSpanId{1};
  std::mutex Mutex;
  std::ofstream Sink;
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII span: allocates an id and pushes itself on the thread's span stack
/// at construction, pops and emits one span record at destruction. Extra
/// fields can be attached while the span is open. The parent defaults to
/// the span open on the constructing thread; pass \p ParentOverride to
/// link a cross-thread child (e.g. a pool job) to its coordinator span.
class TraceSpan {
public:
  explicit TraceSpan(std::string_view Name) : TraceSpan(Name, UseStack) {}
  TraceSpan(std::string_view Name, uint64_t ParentOverride);
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan();

  /// Attaches a field to the span record emitted at destruction.
  void note(TraceField Field) {
    if (Active)
      Fields.push_back(std::move(Field));
  }

  bool active() const { return Active; }
  /// This span's id (0 when tracing is disabled). Hand it to workers as
  /// their ParentOverride.
  uint64_t id() const { return Id; }

private:
  /// Sentinel ParentOverride: take the parent from the thread span stack.
  static constexpr uint64_t UseStack = ~0ull;

  std::string Name;
  bool Active;
  uint64_t StartUs = 0;
  uint64_t Id = 0;
  uint64_t Parent = 0;
  std::string Phase;
  std::vector<TraceField> Fields;
};

/// RAII phase attribution: records emitted by this thread while the scope
/// is open carry \p Phase (the previous phase is restored on exit). The
/// campaign engine opens one per job with the paper's pipeline stages:
/// "fuzz" (test generation + bug-finding scan), "scan" (reduction-phase
/// bug scan), "reduce", "dedup".
class TracePhaseScope {
public:
  explicit TracePhaseScope(std::string_view Phase);
  TracePhaseScope(const TracePhaseScope &) = delete;
  TracePhaseScope &operator=(const TracePhaseScope &) = delete;
  ~TracePhaseScope();

private:
  bool Active;
  std::string Previous;
};

} // namespace telemetry
} // namespace spvfuzz

#endif // SUPPORT_TRACE_H
