//===- support/Trace.h - Structured span/event tracing ----------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured tracer that writes one JSON object per line (JSONL) to a
/// configurable sink (`--trace-out`). Two record shapes:
///
///   {"type":"event","ts_us":<t>,"name":"...", <fields>...}
///   {"type":"span","ts_us":<start>,"dur_us":<d>,"name":"...", <fields>...}
///
/// Timestamps are microseconds on the steady clock, relative to the moment
/// the sink was opened. Spans are emitted on destruction of a TraceSpan
/// (RAII), so a span line appears *after* any events recorded inside it.
///
/// Like the metrics registry, the tracer is disabled until a sink is
/// opened and instrumentation gates on a relaxed atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TRACE_H
#define SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace spvfuzz {
namespace telemetry {

/// One key/value attribute on a trace record. Values are either text or
/// numbers (numbers are emitted unquoted).
struct TraceField {
  TraceField(std::string_view Key, std::string_view Text)
      : Key(Key), Text(Text), IsNumber(false) {}
  TraceField(std::string_view Key, const char *Text)
      : Key(Key), Text(Text), IsNumber(false) {}
  template <typename NumberT,
            typename = std::enable_if_t<std::is_arithmetic_v<NumberT>>>
  TraceField(std::string_view Key, NumberT Number)
      : Key(Key), Number(static_cast<double>(Number)), IsNumber(true) {}

  std::string Key;
  std::string Text;
  double Number = 0.0;
  bool IsNumber;
};

/// The process-wide tracer.
class Tracer {
public:
  static Tracer &global();

  /// Opens (truncating) \p Path as the JSONL sink and enables tracing.
  /// Returns false and sets \p Error on failure.
  bool open(const std::string &Path, std::string &Error);

  /// Flushes and closes the sink; tracing is disabled again.
  void close();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Writes an event record.
  void event(std::string_view Name,
             std::initializer_list<TraceField> Fields = {});

  /// Writes a span record covering [\p StartUs, now].
  void span(std::string_view Name, uint64_t StartUs,
            const std::vector<TraceField> &Fields);

  /// Microseconds since the sink was opened.
  uint64_t nowUs() const;

private:
  void writeRecord(std::string_view Type, std::string_view Name,
                   uint64_t TsUs, const TraceField *Fields, size_t NumFields,
                   uint64_t DurUs, bool HasDur);

  std::atomic<bool> Enabled{false};
  std::mutex Mutex;
  std::ofstream Sink;
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII span: records its start on construction and emits one span record
/// on destruction. Extra fields can be attached while the span is open.
class TraceSpan {
public:
  explicit TraceSpan(std::string_view Name)
      : Name(Name), Active(Tracer::global().enabled()),
        StartUs(Active ? Tracer::global().nowUs() : 0) {}
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() {
    if (Active && Tracer::global().enabled())
      Tracer::global().span(Name, StartUs, Fields);
  }

  /// Attaches a field to the span record emitted at destruction.
  void note(TraceField Field) {
    if (Active)
      Fields.push_back(std::move(Field));
  }

private:
  std::string Name;
  bool Active;
  uint64_t StartUs;
  std::vector<TraceField> Fields;
};

} // namespace telemetry
} // namespace spvfuzz

#endif // SUPPORT_TRACE_H
