//===- support/ModuleHash.cpp - Structural module hashing ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// This file reads ir/Module.h and exec/Value.h as plain data (field and
// vector traversal only, no out-of-line ir functions), so spvfuzz_support
// stays link-independent of the libraries layered above it.
//
//===----------------------------------------------------------------------===//

#include "support/ModuleHash.h"

#include "exec/Value.h"
#include "ir/Module.h"

using namespace spvfuzz;

namespace {

void hashInstruction(StructuralHasher &H, const Instruction &Inst) {
  H.word(static_cast<uint64_t>(Inst.Opcode));
  H.word(Inst.ResultType);
  H.word(Inst.Result);
  H.word(Inst.Operands.size());
  for (const Operand &Op : Inst.Operands) {
    H.word(static_cast<uint64_t>(Op.OperandKind));
    H.word(Op.Word);
  }
}

void hashValue(StructuralHasher &H, const Value &V) {
  H.word(static_cast<uint64_t>(V.ValueKind));
  H.word(static_cast<uint64_t>(static_cast<uint32_t>(V.Scalar)));
  H.word(V.Elements.size());
  for (const Value &Element : V.Elements)
    hashValue(H, Element);
}

} // namespace

uint64_t spvfuzz::hashModule(const Module &M) {
  StructuralHasher H;
  H.word(M.EntryPointId);
  H.word(M.GlobalInsts.size());
  for (const Instruction &Inst : M.GlobalInsts)
    hashInstruction(H, Inst);
  H.word(M.Functions.size());
  for (const Function &Func : M.Functions) {
    hashInstruction(H, Func.Def);
    H.word(Func.Params.size());
    for (const Instruction &Param : Func.Params)
      hashInstruction(H, Param);
    H.word(Func.Blocks.size());
    for (const BasicBlock &Block : Func.Blocks) {
      H.word(Block.LabelId);
      H.word(Block.Body.size());
      for (const Instruction &Inst : Block.Body)
        hashInstruction(H, Inst);
    }
  }
  return H.digest();
}

uint64_t spvfuzz::hashShaderInput(const ShaderInput &Input) {
  StructuralHasher H;
  H.word(Input.Bindings.size());
  for (const auto &[Binding, V] : Input.Bindings) {
    H.word(Binding);
    hashValue(H, V);
  }
  return H.digest();
}
