//===- support/ModuleHash.h - Structural module hashing ---------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fast structural 64-bit hashing of modules and shader inputs, the key
/// ingredient of the evaluation cache (target/EvalCache.h): two modules
/// that hash equal are treated as the same compiler input, so every
/// hashed field must cover exactly the state a target run can observe.
///
/// The hash walks types/constants/globals in declaration order and each
/// function's blocks in their stored order — which the module invariant
/// keeps dominance-compatible (every block precedes the blocks it
/// dominates) — so structurally equal modules hash equal regardless of how
/// they were produced. Module::Bound is deliberately excluded: it only
/// influences fresh-id allocation, never compilation or execution.
///
/// Mixing uses the splitmix64 finalizer per word, so any single-word
/// change (an opcode, a result id, one operand) avalanches through the
/// digest.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_MODULEHASH_H
#define SUPPORT_MODULEHASH_H

#include <cstdint>

namespace spvfuzz {

struct Module;
struct ShaderInput;

/// A streaming 64-bit hash over words. Deterministic across platforms and
/// runs (no per-process seeding): hashes are stable cache keys.
class StructuralHasher {
public:
  void word(uint64_t Word) {
    Digest = mix(Digest ^ mix(Word + ++Position));
  }

  uint64_t digest() const { return Digest; }

  /// splitmix64's finalizer: full-avalanche 64-bit mixing.
  static uint64_t mix(uint64_t X) {
    X += 0x9E3779B97F4A7C15ull;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
    return X ^ (X >> 31);
  }

private:
  uint64_t Digest = 0x243F6A8885A308D3ull; // pi, for lack of opinions
  uint64_t Position = 0;
};

/// Structural hash of everything a target run observes: global
/// declarations, functions (definition, parameters, labels, bodies) and
/// the entry point. Excludes Module::Bound.
uint64_t hashModule(const Module &M);

/// Structural hash of a shader input (bindings in key order).
uint64_t hashShaderInput(const ShaderInput &Input);

} // namespace spvfuzz

#endif // SUPPORT_MODULEHASH_H
