//===- support/Statistics.cpp - Statistics used by the evaluation ---------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace spvfuzz;

double spvfuzz::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return (Values[N / 2 - 1] + Values[N / 2]) / 2.0;
}

double spvfuzz::normalCdf(double Z) {
  return 0.5 * std::erfc(-Z / std::sqrt(2.0));
}

/// Assigns mid-ranks to the pooled samples and returns the rank sum of the
/// first \p SizeA elements, together with the tie-correction term
/// sum(t^3 - t) over tie groups.
static void rankSums(const std::vector<double> &A, const std::vector<double> &B,
                     double &RankSumA, double &TieTerm) {
  struct Tagged {
    double Value;
    bool FromA;
  };
  std::vector<Tagged> Pooled;
  Pooled.reserve(A.size() + B.size());
  for (double V : A)
    Pooled.push_back({V, true});
  for (double V : B)
    Pooled.push_back({V, false});
  std::sort(Pooled.begin(), Pooled.end(),
            [](const Tagged &X, const Tagged &Y) { return X.Value < Y.Value; });

  RankSumA = 0.0;
  TieTerm = 0.0;
  size_t I = 0;
  while (I < Pooled.size()) {
    size_t J = I;
    while (J < Pooled.size() && Pooled[J].Value == Pooled[I].Value)
      ++J;
    // Ranks are 1-based; elements I..J-1 share the mid-rank.
    double MidRank = (static_cast<double>(I + 1) + static_cast<double>(J)) / 2;
    double TieSize = static_cast<double>(J - I);
    TieTerm += TieSize * TieSize * TieSize - TieSize;
    for (size_t K = I; K < J; ++K)
      if (Pooled[K].FromA)
        RankSumA += MidRank;
    I = J;
  }
}

MannWhitneyResult spvfuzz::mannWhitneyU(const std::vector<double> &A,
                                        const std::vector<double> &B) {
  MannWhitneyResult Result;
  double NA = static_cast<double>(A.size());
  double NB = static_cast<double>(B.size());
  if (A.empty() || B.empty())
    return Result;

  double RankSumA = 0.0, TieTerm = 0.0;
  rankSums(A, B, RankSumA, TieTerm);

  double UA = RankSumA - NA * (NA + 1) / 2;
  Result.U = UA;

  double N = NA + NB;
  double Mean = NA * NB / 2;
  double Variance = NA * NB / 12 * ((N + 1) - TieTerm / (N * (N - 1)));
  if (Variance <= 0) {
    // All observations tied: no evidence either way.
    Result.ConfidenceAGreater = 50.0;
    Result.AWins = false;
    return Result;
  }

  // Continuity-corrected normal approximation; one-sided P(A > B).
  double Z = (UA - Mean - 0.5) / std::sqrt(Variance);
  if (UA < Mean)
    Z = (UA - Mean + 0.5) / std::sqrt(Variance);
  Result.ConfidenceAGreater = 100.0 * normalCdf(Z);
  Result.AWins = Result.ConfidenceAGreater >= 50.0;
  return Result;
}
