//===- gen/Generator.cpp - Well-defined program generation ----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"

#include "ir/ModuleBuilder.h"
#include "support/Rng.h"

using namespace spvfuzz;

namespace {

/// Builds one program. Statement generation is structured (sequence / if /
/// bounded loop), so control flow always reconverges and terminates.
class ProgramGenerator {
public:
  ProgramGenerator(uint64_t Seed, const GeneratorOptions &Options)
      : Random(Seed), Options(Options), Builder(Result.M) {}

  GeneratedProgram generate() {
    IntType = Builder.getIntType();
    BoolType = Builder.getBoolType();
    VoidType = Builder.getVoidType();
    IntPtrFunction = Builder.getPointerType(StorageClass::Function, IntType);

    // Uniform inputs with random runtime values.
    for (uint32_t I = 0; I < Options.NumUniforms; ++I) {
      Id Var = Builder.addUniform(IntType, I);
      IntUniforms.push_back(Var);
      Result.Input.Bindings[I] =
          Value::makeInt(static_cast<int32_t>(Random.uniform(0, 200)) - 100);
    }
    for (uint32_t I = 0; I < Options.NumBoolUniforms; ++I) {
      uint32_t Binding = Options.NumUniforms + I;
      Id Var = Builder.addUniform(BoolType, Binding);
      BoolUniforms.push_back(Var);
      Result.Input.Bindings[Binding] = Value::makeBool(Random.flip());
    }
    for (uint32_t I = 0; I < Options.NumOutputs; ++I)
      Outputs.push_back(Builder.addOutput(IntType, I));

    for (uint32_t I = 0; I < Options.NumHelperFunctions; ++I)
      generateHelper();

    generateEntry();
    return std::move(Result);
  }

private:
  // --- Current insertion state (one function at a time) -------------------

  Function *Func = nullptr;
  BasicBlock *Block = nullptr;

  void emit(Instruction Inst) { Block->Body.push_back(std::move(Inst)); }

  BasicBlock *newBlock() {
    Func->Blocks.emplace_back(Result.M.takeFreshId());
    return &Func->Blocks.back();
  }

  /// Re-finds a block by id; needed because newBlock can reallocate the
  /// block vector.
  BasicBlock *blockById(Id LabelId) { return Func->findBlock(LabelId); }

  Id freshId() { return Result.M.takeFreshId(); }

  // --- Expressions ---------------------------------------------------------

  /// Emits code for a random int expression and returns its id. Uses only
  /// values that are available in the current block: constants, loads of
  /// uniforms/locals and function parameters.
  Id genIntExpr(uint32_t Depth) {
    if (Depth == 0 || Random.chancePercent(30)) {
      // Leaf.
      switch (Random.uniform(0, 2)) {
      case 0:
        return Builder.getIntConstant(static_cast<int32_t>(
            Random.uniform(0, 40)) - 20);
      case 1:
        if (!IntUniforms.empty()) {
          Id Load = freshId();
          emit(ModuleBuilder::makeLoad(IntType, Load,
                                       Random.pick(IntUniforms)));
          return Load;
        }
        [[fallthrough]];
      default:
        if (!ScopeLocals.empty()) {
          Id Load = freshId();
          emit(ModuleBuilder::makeLoad(IntType, Load,
                                       Random.pick(ScopeLocals)));
          return Load;
        }
        if (!IntParams.empty())
          return Random.pick(IntParams);
        return Builder.getIntConstant(1);
      }
    }
    switch (Random.uniform(0, 5)) {
    case 0:
    case 1: {
      static const Op Arith[] = {Op::IAdd, Op::ISub, Op::IMul, Op::SDiv,
                                 Op::SMod};
      Id Lhs = genIntExpr(Depth - 1);
      Id Rhs = genIntExpr(Depth - 1);
      Id ResultId = freshId();
      emit(ModuleBuilder::makeBinOp(Arith[Random.index(5)], IntType, ResultId,
                                    Lhs, Rhs));
      return ResultId;
    }
    case 2: {
      Id In = genIntExpr(Depth - 1);
      Id ResultId = freshId();
      emit(ModuleBuilder::makeUnaryOp(Op::SNegate, IntType, ResultId, In));
      return ResultId;
    }
    default: {
      Id Cond = genBoolExpr(Depth - 1);
      Id TrueVal = genIntExpr(Depth - 1);
      Id FalseVal = genIntExpr(Depth - 1);
      Id ResultId = freshId();
      emit(ModuleBuilder::makeSelect(IntType, ResultId, Cond, TrueVal,
                                     FalseVal));
      return ResultId;
    }
    }
  }

  Id genBoolExpr(uint32_t Depth) {
    if (Depth == 0 || Random.chancePercent(35)) {
      if (!BoolUniforms.empty() && Random.chancePercent(40)) {
        Id Load = freshId();
        emit(ModuleBuilder::makeLoad(BoolType, Load,
                                     Random.pick(BoolUniforms)));
        return Load;
      }
      return Builder.getBoolConstant(Random.flip());
    }
    switch (Random.uniform(0, 3)) {
    case 0: {
      static const Op Compare[] = {Op::IEqual,        Op::INotEqual,
                                   Op::SLessThan,     Op::SLessThanEqual,
                                   Op::SGreaterThan,  Op::SGreaterThanEqual};
      Id Lhs = genIntExpr(Depth - 1);
      Id Rhs = genIntExpr(Depth - 1);
      Id ResultId = freshId();
      emit(ModuleBuilder::makeBinOp(Compare[Random.index(6)], BoolType,
                                    ResultId, Lhs, Rhs));
      return ResultId;
    }
    case 1: {
      Id In = genBoolExpr(Depth - 1);
      // Never negate a constant directly: LogicalNot-of-constant is kept
      // out of reference programs so that it remains a clean compiler-bug
      // trigger feature for the testing experiments.
      const Instruction *InDef = Result.M.findDef(In);
      if (InDef && isConstantDecl(InDef->Opcode)) {
        Id Lhs = genIntExpr(Depth == 0 ? 0 : Depth - 1);
        Id Rhs = genIntExpr(Depth == 0 ? 0 : Depth - 1);
        Id Cmp = freshId();
        emit(ModuleBuilder::makeBinOp(Op::SLessThan, BoolType, Cmp, Lhs, Rhs));
        In = Cmp;
      }
      Id ResultId = freshId();
      emit(ModuleBuilder::makeUnaryOp(Op::LogicalNot, BoolType, ResultId, In));
      return ResultId;
    }
    default: {
      Id Lhs = genBoolExpr(Depth - 1);
      Id Rhs = genBoolExpr(Depth - 1);
      Id ResultId = freshId();
      emit(ModuleBuilder::makeBinOp(Random.flip() ? Op::LogicalAnd
                                                  : Op::LogicalOr,
                                    BoolType, ResultId, Lhs, Rhs));
      return ResultId;
    }
    }
  }

  // --- Statements ------------------------------------------------------------

  void genStatements(uint32_t Depth) {
    uint32_t Count = Random.uniform(1, Options.StatementsPerBlock);
    for (uint32_t I = 0; I < Count; ++I)
      genStatement(Depth);
  }

  void genStatement(uint32_t Depth) {
    uint32_t Choice = Random.uniform(0, 9);
    if (Depth == 0 || Choice < 5) {
      // Assignment to a local.
      if (ScopeLocals.empty())
        return;
      Id Target = Random.pick(ScopeLocals);
      Id ValueId = genIntExpr(Options.MaxExprDepth);
      emit(ModuleBuilder::makeStore(Target, ValueId));
      return;
    }
    if (Choice < 7 && !Callees.empty()) {
      // Call a helper and store the result.
      const CalleeInfo &Callee = Random.pick(Callees);
      std::vector<Operand> Ops = {Operand::id(Callee.FuncId)};
      for (uint32_t I = 0; I < Callee.NumParams; ++I)
        Ops.push_back(Operand::id(genIntExpr(Options.MaxExprDepth - 1)));
      Id CallId = freshId();
      emit(Instruction(Op::FunctionCall, IntType, CallId, std::move(Ops)));
      if (!ScopeLocals.empty())
        emit(ModuleBuilder::makeStore(Random.pick(ScopeLocals), CallId));
      return;
    }
    if (Choice < 8) {
      genIf(Depth - 1);
      return;
    }
    genLoop(Depth - 1);
  }

  void genIf(uint32_t Depth) {
    Id Cond = genBoolExpr(Options.MaxExprDepth);
    Id CurrentId = Block->LabelId;
    Id ThenId = newBlock()->LabelId;
    bool HasElse = Random.flip();

    // Then branch.
    Block = blockById(ThenId);
    genStatements(Depth);
    Id ThenEndId = Block->LabelId;

    Id ElseId = InvalidId, ElseEndId = InvalidId;
    if (HasElse) {
      ElseId = newBlock()->LabelId;
      Block = blockById(ElseId);
      genStatements(Depth);
      ElseEndId = Block->LabelId;
    }

    Id MergeId = newBlock()->LabelId;
    blockById(CurrentId)->Body.push_back(ModuleBuilder::makeBranchConditional(
        Cond, ThenId, HasElse ? ElseId : MergeId));
    blockById(ThenEndId)->Body.push_back(ModuleBuilder::makeBranch(MergeId));
    if (HasElse)
      blockById(ElseEndId)->Body.push_back(ModuleBuilder::makeBranch(MergeId));
    Block = blockById(MergeId);
  }

  void genLoop(uint32_t Depth) {
    // Bounded counting loop over a dedicated local counter.
    Id Counter = addLocal(/*AddToScope=*/false);
    Id Limit = Builder.getIntConstant(
        static_cast<int32_t>(Random.uniform(1, Options.MaxLoopIterations)));
    Id Zero = Builder.getIntConstant(0);
    Id One = Builder.getIntConstant(1);

    emit(ModuleBuilder::makeStore(Counter, Zero));
    Id PreheaderId = Block->LabelId;
    Id HeaderId = newBlock()->LabelId;
    blockById(PreheaderId)->Body.push_back(
        ModuleBuilder::makeBranch(HeaderId));

    // Header: load counter, compare, conditional branch.
    Block = blockById(HeaderId);
    Id Iv = freshId();
    emit(ModuleBuilder::makeLoad(IntType, Iv, Counter));
    Id Cond = freshId();
    emit(ModuleBuilder::makeBinOp(Op::SLessThan, BoolType, Cond, Iv, Limit));

    Id BodyId = newBlock()->LabelId;
    Block = blockById(BodyId);
    genStatements(Depth);
    // Increment and loop back.
    Id IvAgain = freshId();
    emit(ModuleBuilder::makeLoad(IntType, IvAgain, Counter));
    Id Next = freshId();
    emit(ModuleBuilder::makeBinOp(Op::IAdd, IntType, Next, IvAgain, One));
    emit(ModuleBuilder::makeStore(Counter, Next));
    Id BodyEndId = Block->LabelId;

    Id MergeId = newBlock()->LabelId;
    blockById(HeaderId)->Body.push_back(
        ModuleBuilder::makeBranchConditional(Cond, BodyId, MergeId));
    blockById(BodyEndId)->Body.push_back(ModuleBuilder::makeBranch(HeaderId));
    Block = blockById(MergeId);
  }

  /// Declares an int local in the entry block of the current function and
  /// returns its pointer id.
  Id addLocal(bool AddToScope) {
    Id VarId = freshId();
    Id Init = Builder.getIntConstant(static_cast<int32_t>(
        Random.uniform(0, 20)) - 10);
    Instruction Var =
        ModuleBuilder::makeLocalVariable(IntPtrFunction, VarId, Init);
    BasicBlock &Entry = Func->entryBlock();
    Entry.Body.insert(Entry.Body.begin() + Entry.firstInsertionIndex(), Var);
    if (AddToScope)
      ScopeLocals.push_back(VarId);
    return VarId;
  }

  // --- Functions -------------------------------------------------------------

  struct CalleeInfo {
    Id FuncId;
    uint32_t NumParams;
  };

  void generateHelper() {
    uint32_t NumParams = Random.uniform(1, 3);
    std::vector<Id> ParamTypes(NumParams, IntType);
    std::vector<Id> ParamIds;
    Func = &Builder.startFunction(IntType, ParamTypes, &ParamIds);
    Block = &Func->entryBlock();
    ScopeLocals.clear();
    IntParams = ParamIds;

    for (uint32_t I = 0; I < 2; ++I)
      addLocal(/*AddToScope=*/true);
    genStatements(Random.uniform(0, 1));
    Id ReturnId = genIntExpr(Options.MaxExprDepth);
    emit(ModuleBuilder::makeReturnValue(ReturnId));

    Callees.push_back({Func->id(), NumParams});
    IntParams.clear();
  }

  void generateEntry() {
    Func = &Builder.startFunction(VoidType, {});
    Block = &Func->entryBlock();
    ScopeLocals.clear();

    for (uint32_t I = 0; I < Options.NumLocals; ++I)
      addLocal(/*AddToScope=*/true);
    genStatements(Options.MaxStatementDepth);

    for (Id Output : Outputs) {
      Id ValueId = genIntExpr(Options.MaxExprDepth);
      emit(ModuleBuilder::makeStore(Output, ValueId));
    }
    emit(ModuleBuilder::makeReturn());
    Builder.setEntryPoint(Func->id());
  }

  Rng Random;
  GeneratorOptions Options;
  GeneratedProgram Result;
  ModuleBuilder Builder;

  Id IntType = InvalidId, BoolType = InvalidId, VoidType = InvalidId;
  Id IntPtrFunction = InvalidId;
  std::vector<Id> IntUniforms, BoolUniforms, Outputs;
  std::vector<Id> ScopeLocals; // pointers to int locals in scope
  std::vector<Id> IntParams;   // parameters of the current helper
  std::vector<CalleeInfo> Callees;
};

} // namespace

GeneratedProgram spvfuzz::generateProgram(uint64_t Seed,
                                          const GeneratorOptions &Options) {
  return ProgramGenerator(Seed, Options).generate();
}

std::vector<GeneratedProgram>
spvfuzz::generateCorpus(size_t Count, uint64_t Seed,
                        const GeneratorOptions &Options) {
  std::vector<GeneratedProgram> Corpus;
  Corpus.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Corpus.push_back(generateProgram(Seed * 1000003ULL + I, Options));
  return Corpus;
}
