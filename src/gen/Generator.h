//===- gen/Generator.h - Well-defined program generation --------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generation of well-defined MiniSPV modules with associated
/// inputs. Stands in for the GraphicsFuzz reference and donor shader
/// corpora: programs are deterministic and UB-free by construction
/// (MiniSPV semantics are total and all generated loops are bounded), so
/// they are suitable originals for transformation-based testing.
///
//===----------------------------------------------------------------------===//

#ifndef GEN_GENERATOR_H
#define GEN_GENERATOR_H

#include "exec/Value.h"
#include "ir/Module.h"

namespace spvfuzz {

struct GeneratorOptions {
  uint32_t NumUniforms = 3;      // int-typed inputs
  uint32_t NumBoolUniforms = 1;  // bool-typed inputs
  uint32_t NumOutputs = 2;       // int-typed outputs
  uint32_t NumHelperFunctions = 2;
  uint32_t MaxStatementDepth = 3; // nesting of if/loop constructs
  uint32_t StatementsPerBlock = 4;
  uint32_t MaxExprDepth = 3;
  uint32_t MaxLoopIterations = 6;
  uint32_t NumLocals = 4;
};

/// A generated original (program, input) pair.
struct GeneratedProgram {
  Module M;
  ShaderInput Input;
};

/// Generates a well-defined program and input from \p Seed.
GeneratedProgram generateProgram(uint64_t Seed,
                                 const GeneratorOptions &Options = {});

/// Generates \p Count programs from consecutive seeds derived from \p Seed.
std::vector<GeneratedProgram>
generateCorpus(size_t Count, uint64_t Seed,
               const GeneratorOptions &Options = {});

} // namespace spvfuzz

#endif // GEN_GENERATOR_H
