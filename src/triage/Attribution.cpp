//===- triage/Attribution.cpp - Bug attribution record --------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "triage/Attribution.h"

using namespace spvfuzz;
using namespace spvfuzz::triage;

namespace {

void jsonEscapeInto(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out.push_back(Hex[(C >> 4) & 0xF]);
        Out.push_back(Hex[C & 0xF]);
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

} // namespace

const char *spvfuzz::triage::triageVerdictName(TriageVerdict V) {
  switch (V) {
  case TriageVerdict::ExactPass:
    return "exact-pass";
  case TriageVerdict::Unattributable:
    return "unattributable";
  case TriageVerdict::NoRepro:
    return "no-repro";
  }
  return "unattributable";
}

bool spvfuzz::triage::triageVerdictFromName(const std::string &Name,
                                            TriageVerdict &Out) {
  for (TriageVerdict V : {TriageVerdict::ExactPass, TriageVerdict::Unattributable,
                          TriageVerdict::NoRepro}) {
    if (Name == triageVerdictName(V)) {
      Out = V;
      return true;
    }
  }
  return false;
}

std::string BugAttribution::culpritLabel() const {
  switch (Verdict) {
  case TriageVerdict::ExactPass:
    return std::string(optPassName(Culprit)) + "#" +
           std::to_string(InstanceIndex);
  case TriageVerdict::Unattributable:
    return "(unattributable)";
  case TriageVerdict::NoRepro:
    return "(no-repro)";
  }
  return "(unattributable)";
}

void spvfuzz::triage::writeAttributionBinary(ByteWriter &W,
                                             const BugAttribution &Attr) {
  W.str(Attr.Target);
  W.str(Attr.Signature);
  W.u8(static_cast<uint8_t>(Attr.Verdict));
  W.u8(static_cast<uint8_t>(Attr.Culprit));
  W.u32(Attr.PipelineIndex);
  W.u32(Attr.InstanceIndex);
  W.u32(Attr.BisectionChecks);
  W.u32(Attr.PassRuns);
  W.u32(static_cast<uint32_t>(Attr.Probes.size()));
  for (uint32_t Probe : Attr.Probes)
    W.u32(Probe);
  W.u32(static_cast<uint32_t>(Attr.DivergenceIndex));
  W.u32(Attr.LocalizationRuns);
  W.str(Attr.Reason);
}

bool spvfuzz::triage::readAttributionBinary(ByteReader &R, BugAttribution &Out) {
  Out = BugAttribution();
  uint8_t Verdict = 0, Culprit = 0;
  if (!R.str(Out.Target) || !R.str(Out.Signature) || !R.u8(Verdict) ||
      !R.u8(Culprit))
    return false;
  if (Verdict > static_cast<uint8_t>(TriageVerdict::NoRepro))
    return R.failAt("invalid triage verdict");
  if (Culprit > static_cast<uint8_t>(OptPassKind::Dce))
    return R.failAt("invalid culprit pass kind");
  Out.Verdict = static_cast<TriageVerdict>(Verdict);
  Out.Culprit = static_cast<OptPassKind>(Culprit);
  uint32_t ProbeCount = 0, Divergence = 0;
  if (!R.u32(Out.PipelineIndex) || !R.u32(Out.InstanceIndex) ||
      !R.u32(Out.BisectionChecks) || !R.u32(Out.PassRuns) || !R.u32(ProbeCount))
    return false;
  if (!R.checkCount(ProbeCount, 4))
    return false;
  Out.Probes.reserve(ProbeCount);
  for (uint32_t I = 0; I < ProbeCount; ++I) {
    uint32_t Probe = 0;
    if (!R.u32(Probe))
      return false;
    Out.Probes.push_back(Probe);
  }
  if (!R.u32(Divergence) || !R.u32(Out.LocalizationRuns) || !R.str(Out.Reason))
    return false;
  Out.DivergenceIndex = static_cast<int32_t>(Divergence);
  return true;
}

std::string spvfuzz::triage::attributionJson(const BugAttribution &Attr) {
  std::string Json = "{\"verdict\": ";
  jsonEscapeInto(Json, triageVerdictName(Attr.Verdict));
  Json += ", \"label\": ";
  jsonEscapeInto(Json, Attr.culpritLabel());
  if (Attr.Verdict == TriageVerdict::ExactPass) {
    Json += ", \"culprit\": ";
    jsonEscapeInto(Json, optPassName(Attr.Culprit));
    Json += ", \"pipelineIndex\": " + std::to_string(Attr.PipelineIndex);
    Json += ", \"instanceIndex\": " + std::to_string(Attr.InstanceIndex);
  }
  Json += ", \"bisectionChecks\": " + std::to_string(Attr.BisectionChecks);
  Json += ", \"passRuns\": " + std::to_string(Attr.PassRuns);
  Json += ", \"divergenceIndex\": " + std::to_string(Attr.DivergenceIndex);
  Json += ", \"localizationRuns\": " + std::to_string(Attr.LocalizationRuns);
  if (!Attr.Reason.empty()) {
    Json += ", \"reason\": ";
    jsonEscapeInto(Json, Attr.Reason);
  }
  Json += "}";
  return Json;
}
