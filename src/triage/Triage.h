//===- triage/Triage.h - Pass bisection & differential localization -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attribution of found bugs to the optimizer pass that triggers them.
/// Crashes are attributed by pass-sequence bisection: binary search over
/// pipeline-prefix length, sound because the pipeline halts at its first
/// crash (so "some pass in [0, k) crashes" is monotone in k), with every
/// prefix evaluation memoized so each pass runs at most once across the
/// whole search. Silent miscompilations are attributed FuzzyFlow-style by
/// differential localization: the reference program is executed against
/// each per-pass intermediate module and the first observable divergence
/// names the culprit. Hang and flaky signatures are deterministically
/// declined (see TriageVerdict::Unattributable) — never mis-attributed.
///
/// Layering: triage sits on target (+ campaign for record types), below
/// store. Attribution is a pure function of (target spec, reproducer,
/// input, signature), so running it as a post-pass keeps campaigns
/// byte-identical at any job or worker count.
///
//===----------------------------------------------------------------------===//

#ifndef TRIAGE_TRIAGE_H
#define TRIAGE_TRIAGE_H

#include "campaign/Experiments.h"
#include "target/Target.h"
#include "triage/Attribution.h"

#include <string>
#include <vector>

namespace spvfuzz {
namespace triage {

/// Knobs for a triage run.
struct TriageOptions {
  /// Worker threads for attributeAll. Each attribution is a pure function
  /// of its item and results commit in item order, so every job count
  /// yields byte-identical output.
  size_t Jobs = 1;
  /// Execution engine for differential-localization runs.
  ExecEngine Engine = ExecEngine::Lowered;

  TriageOptions withJobs(size_t N) const {
    TriageOptions O = *this;
    O.Jobs = N;
    return O;
  }
};

/// One bug to attribute: a bucket's reduced reproducer plus the signature
/// it was filed under.
struct TriageItem {
  std::string TargetName;
  std::string Signature;
  Module Repro;
  ShaderInput Input;
};

/// Attributes one bug against \p T. Dispatches on the signature class:
/// solid crash signatures bisect, the shared miscompilation marker
/// localizes, hang / tool-error / flaky signatures are declined with a
/// deterministic Unattributable verdict.
BugAttribution attributeBug(const Target &T, const Module &Repro,
                            const ShaderInput &Input,
                            const std::string &Signature,
                            const TriageOptions &Options = TriageOptions());

/// Attributes every item, fanning out over Options.Jobs threads and
/// committing results in item order. Items naming a target absent from
/// \p Fleet come back Unattributable with a "target not in fleet" reason.
std::vector<BugAttribution> attributeAll(const TargetFleet &Fleet,
                                         const std::vector<TriageItem> &Items,
                                         const TriageOptions &Options =
                                             TriageOptions());

// --- Ground-truth dedup scoring ---------------------------------------------
//
// The simulated fleet gives us what the paper's field study could not: the
// true bug identity behind every reproducer (the injected BugPoint). That
// turns dedup quality into a measurable quantity — precision / recall over
// same-target reproducer pairs, cluster purity over buckets — for each of
// the three clustering axes: transformation types (the paper's Figure 6),
// bisection culprit labels, and their combination.

/// The canonical rendering of a transformation-type set: "+"-joined kind
/// names in set order, "(none)" when empty. Shared with the store's bucket
/// naming so both layers agree on the types axis.
std::string dedupTypesKey(const std::set<TransformationKind> &Types);

/// One scored reproducer: its true bug identity and its key under each
/// clustering axis.
struct GroundTruthItem {
  std::string Target;
  /// True bug identity. Crash signatures are per-BugPoint, so for the
  /// crash-only dedup experiment the signature *is* the ground truth.
  std::string TruthLabel;
  std::string TypesKey;
  std::string CulpritLabel;
};

/// Builds the scored item for one reduction record and its attribution.
GroundTruthItem groundTruthItemFor(const ReductionRecord &Record,
                                   const BugAttribution &Attr);

/// Pairwise + cluster quality of one dedup axis against ground truth.
struct DedupAxisScore {
  std::string Axis;
  /// Of the same-target pairs the axis merges, the fraction that truly
  /// are the same bug (1.0 when the axis merges nothing).
  double Precision = 1.0;
  /// Of the same-target pairs that truly are the same bug, the fraction
  /// the axis merges (1.0 when there are none).
  double Recall = 1.0;
  /// Mean over items of "my cluster's majority truth label is mine".
  double Purity = 1.0;
  /// Distinct (target, key) clusters the axis produces.
  size_t Clusters = 0;
};

/// Scores the three axes — "types", "bisect", "combined" — in that order.
std::vector<DedupAxisScore>
scoreDedupAxes(const std::vector<GroundTruthItem> &Items);

} // namespace triage
} // namespace spvfuzz

#endif // TRIAGE_TRIAGE_H
