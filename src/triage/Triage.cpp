//===- triage/Triage.cpp - Pass bisection & differential localization -----===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "triage/Triage.h"

#include "campaign/Campaign.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <future>
#include <map>

using namespace spvfuzz;
using namespace spvfuzz::triage;

namespace {

/// Memoized pipeline-prefix oracle. Keeps the chain of intermediate
/// modules (Inter[i] = the module after i non-crashing passes) and the
/// first-crash position once found, so evaluating any set of prefixes —
/// in any order — runs each pass at most once. This is what makes
/// bisection cost one pipeline run, not O(log n) pipeline runs.
class PrefixOracle {
public:
  PrefixOracle(const Target &T, const Module &Repro, const BugHost &Bugs)
      : Pipeline(T.spec().Pipeline), Bugs(Bugs) {
    Inter.push_back(Repro);
  }

  /// The first crash within the prefix [0, K), or nullopt if the first K
  /// passes all succeed. \p CrashIndexOut receives the crashing pass
  /// index when a crash is reported.
  PassCrash evalPrefix(size_t K, size_t *CrashIndexOut = nullptr) {
    K = std::min(K, Pipeline.size());
    while (!CrashAt && Inter.size() <= K) {
      size_t Index = Inter.size() - 1; // the next pass not yet run
      Module Next = Inter.back();
      ++PassRuns;
      if (PassCrash Crash = runOptPass(Pipeline[Index], Next, Bugs)) {
        CrashAt = Index;
        CrashSignature = *Crash;
        break;
      }
      Inter.push_back(std::move(Next));
    }
    if (CrashAt && *CrashAt < K) {
      if (CrashIndexOut)
        *CrashIndexOut = *CrashAt;
      return CrashSignature;
    }
    return std::nullopt;
  }

  /// The intermediate module after \p K non-crashing passes. Only valid
  /// after evalPrefix(K) returned nullopt.
  const Module &intermediate(size_t K) const { return Inter[K]; }

  size_t passRuns() const { return PassRuns; }

private:
  const std::vector<OptPassKind> &Pipeline;
  const BugHost &Bugs;
  std::vector<Module> Inter;
  std::optional<size_t> CrashAt;
  std::string CrashSignature;
  size_t PassRuns = 0;
};

/// Ordinal of Pipeline[Index] among earlier same-kind pipeline entries.
uint32_t instanceIndexOf(const std::vector<OptPassKind> &Pipeline,
                         size_t Index) {
  uint32_t Ordinal = 0;
  for (size_t I = 0; I < Index; ++I)
    if (Pipeline[I] == Pipeline[Index])
      ++Ordinal;
  return Ordinal;
}

void fillCulprit(BugAttribution &Attr, const std::vector<OptPassKind> &Pipeline,
                 size_t Index) {
  Attr.Verdict = TriageVerdict::ExactPass;
  Attr.Culprit = Pipeline[Index];
  Attr.PipelineIndex = static_cast<uint32_t>(Index);
  Attr.InstanceIndex = instanceIndexOf(Pipeline, Index);
}

/// Pass-sequence bisection for a solid crash signature. Probes prefix
/// lengths through the memoized oracle; the probe sequence (recorded in
/// Attr.Probes) is a pure function of the pipeline length and the crash
/// position, hence bit-identical at any job count.
void bisectCrash(const Target &T, const Module &Repro,
                 const std::string &Signature, BugAttribution &Attr) {
  const std::vector<OptPassKind> &Pipeline = T.spec().Pipeline;
  const size_t N = Pipeline.size();
  BugHost Solid = T.solidBugs();
  PrefixOracle Oracle(T, Repro, Solid);

  // Probe 0: the full pipeline must reproduce the recorded signature under
  // the solid host, or there is nothing sound to bisect.
  ++Attr.BisectionChecks;
  Attr.Probes.push_back(static_cast<uint32_t>(N));
  size_t CrashIndex = 0;
  PassCrash Full = Oracle.evalPrefix(N, &CrashIndex);
  if (!Full || *Full != Signature) {
    Attr.Verdict = TriageVerdict::NoRepro;
    Attr.Reason = Full ? "reproducer crashes with a different signature: " +
                             *Full
                       : "reproducer compiles cleanly under the solid bug host";
    Attr.PassRuns = static_cast<uint32_t>(Oracle.passRuns());
    return;
  }

  // Binary search the smallest prefix that crashes. Invariant: prefixes of
  // length Lo never crash, prefixes of length Hi always do (monotone
  // because the pipeline halts at its first crash). Every probe is a
  // memoized lookup — the oracle already ran each pass once above.
  size_t Lo = 0, Hi = N;
  while (Hi - Lo > 1) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    ++Attr.BisectionChecks;
    Attr.Probes.push_back(static_cast<uint32_t>(Mid));
    if (Oracle.evalPrefix(Mid))
      Hi = Mid;
    else
      Lo = Mid;
  }
  fillCulprit(Attr, Pipeline, Hi - 1);
  Attr.PassRuns = static_cast<uint32_t>(Oracle.passRuns());
}

/// Differential localization for a miscompilation: execute the reference
/// semantics (the unoptimized reproducer) once, then each per-pass
/// intermediate, and name the first pass whose output diverges
/// observably. Linear scan, not bisection: a later pass could mask an
/// earlier divergence, so "diverges after k passes" is not monotone.
void localizeMiscompilation(const Target &T, const Module &Repro,
                            const ShaderInput &Input,
                            const TriageOptions &Options,
                            BugAttribution &Attr) {
  const std::vector<OptPassKind> &Pipeline = T.spec().Pipeline;
  const size_t N = Pipeline.size();
  BugHost Solid = T.solidBugs();
  PrefixOracle Oracle(T, Repro, Solid);

  ExecResult Baseline =
      Executable::compile(Repro, Options.Engine)->run(Input);
  ++Attr.LocalizationRuns;

  for (size_t K = 1; K <= N; ++K) {
    if (Oracle.evalPrefix(K)) {
      // A crash mid-pipeline means this is not the miscompile reproducer
      // the bucket claims; refuse rather than guess.
      Attr.Verdict = TriageVerdict::Unattributable;
      Attr.Reason = "pipeline crashed during localization";
      Attr.PassRuns = static_cast<uint32_t>(Oracle.passRuns());
      return;
    }
    ExecResult Stepped =
        Executable::compile(Oracle.intermediate(K), Options.Engine)->run(Input);
    ++Attr.LocalizationRuns;
    if (Stepped != Baseline) {
      fillCulprit(Attr, Pipeline, K - 1);
      Attr.DivergenceIndex = static_cast<int32_t>(K - 1);
      Attr.PassRuns = static_cast<uint32_t>(Oracle.passRuns());
      return;
    }
  }
  Attr.Verdict = TriageVerdict::NoRepro;
  Attr.Reason = "optimized semantics match the reference on this input";
  Attr.PassRuns = static_cast<uint32_t>(Oracle.passRuns());
}

void bumpCounters(const BugAttribution &Attr) {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  Metrics.add("triage.attributions");
  switch (Attr.Verdict) {
  case TriageVerdict::ExactPass:
    Metrics.add("triage.exact");
    break;
  case TriageVerdict::Unattributable:
    Metrics.add("triage.unattributable");
    break;
  case TriageVerdict::NoRepro:
    Metrics.add("triage.no_repro");
    break;
  }
  Metrics.add("triage.bisection_checks", Attr.BisectionChecks);
  Metrics.add("triage.pass_runs", Attr.PassRuns);
  Metrics.add("triage.localization_runs", Attr.LocalizationRuns);
}

} // namespace

BugAttribution spvfuzz::triage::attributeBug(const Target &T,
                                             const Module &Repro,
                                             const ShaderInput &Input,
                                             const std::string &Signature,
                                             const TriageOptions &Options) {
  BugAttribution Attr;
  Attr.Target = T.name();
  Attr.Signature = Signature;

  if (Signature == ToolErrorSignature) {
    Attr.Verdict = TriageVerdict::Unattributable;
    Attr.Reason = "tool errors are infrastructure noise, not compiler bugs";
  } else if (Signature == TimeoutSignature) {
    Attr.Verdict = TriageVerdict::Unattributable;
    Attr.Reason = "unattributable under budget: hang signatures carry no "
                  "pass identity";
  } else if (isFlakyFlavor(T.spec().Bugs.flavorOfSignature(Signature))) {
    // Bisecting a flaky signature draws fresh attempts per probe and can
    // implicate whatever pass the draw happens to fire in — a *wrong*
    // answer. Decline deterministically instead.
    Attr.Verdict = TriageVerdict::Unattributable;
    Attr.Reason = "unattributable under budget: flaky signature";
  } else if (Signature == MiscompilationSignature) {
    if (!T.canExecute()) {
      Attr.Verdict = TriageVerdict::Unattributable;
      Attr.Reason = "target cannot execute; differential localization "
                    "needs a reference run";
    } else {
      localizeMiscompilation(T, Repro, Input, Options, Attr);
    }
  } else {
    bisectCrash(T, Repro, Signature, Attr);
  }

  bumpCounters(Attr);
  return Attr;
}

std::vector<BugAttribution>
spvfuzz::triage::attributeAll(const TargetFleet &Fleet,
                              const std::vector<TriageItem> &Items,
                              const TriageOptions &Options) {
  auto RunOne = [&](size_t I) -> BugAttribution {
    const TriageItem &Item = Items[I];
    const Target *T = Fleet.find(Item.TargetName);
    if (!T) {
      BugAttribution Attr;
      Attr.Target = Item.TargetName;
      Attr.Signature = Item.Signature;
      Attr.Verdict = TriageVerdict::Unattributable;
      Attr.Reason = "target not in fleet";
      bumpCounters(Attr);
      return Attr;
    }
    return attributeBug(*T, Item.Repro, Item.Input, Item.Signature, Options);
  };

  std::vector<BugAttribution> Out(Items.size());
  if (Options.Jobs <= 1 || Items.size() <= 1) {
    for (size_t I = 0; I < Items.size(); ++I)
      Out[I] = RunOne(I);
    return Out;
  }

  // Fan out, then commit in item order: each attribution is a pure
  // function of its item, so the aggregate is independent of scheduling.
  ThreadPool Pool(Options.Jobs);
  std::vector<std::future<BugAttribution>> Futures;
  Futures.reserve(Items.size());
  for (size_t I = 0; I < Items.size(); ++I)
    Futures.push_back(Pool.submit([&RunOne, I] { return RunOne(I); }));
  for (size_t I = 0; I < Items.size(); ++I)
    Out[I] = Futures[I].get();
  return Out;
}

// --- Ground-truth dedup scoring ---------------------------------------------

std::string
spvfuzz::triage::dedupTypesKey(const std::set<TransformationKind> &Types) {
  if (Types.empty())
    return "(none)";
  std::string Key;
  for (TransformationKind Kind : Types) {
    if (!Key.empty())
      Key += "+";
    Key += transformationKindName(Kind);
  }
  return Key;
}

GroundTruthItem
spvfuzz::triage::groundTruthItemFor(const ReductionRecord &Record,
                                    const BugAttribution &Attr) {
  GroundTruthItem Item;
  Item.Target = Record.TargetName;
  // Crash signatures are per-BugPoint on the simulated fleet, so the
  // recorded signature is the injected bug's identity.
  Item.TruthLabel = Record.Signature;
  Item.TypesKey = dedupTypesKey(Record.Types);
  Item.CulpritLabel = Attr.culpritLabel();
  return Item;
}

std::vector<DedupAxisScore>
spvfuzz::triage::scoreDedupAxes(const std::vector<GroundTruthItem> &Items) {
  struct Axis {
    const char *Name;
    std::string (*KeyOf)(const GroundTruthItem &);
  };
  static const Axis Axes[] = {
      {"types", [](const GroundTruthItem &I) { return I.TypesKey; }},
      {"bisect", [](const GroundTruthItem &I) { return I.CulpritLabel; }},
      {"combined",
       [](const GroundTruthItem &I) { return I.TypesKey + "|" + I.CulpritLabel; }},
  };

  std::vector<DedupAxisScore> Scores;
  for (const Axis &A : Axes) {
    DedupAxisScore Score;
    Score.Axis = A.Name;

    // Pairwise precision/recall over same-target pairs: dedup never
    // merges across targets, so cross-target pairs are out of scope.
    uint64_t TP = 0, FP = 0, FN = 0;
    for (size_t I = 0; I < Items.size(); ++I) {
      for (size_t J = I + 1; J < Items.size(); ++J) {
        if (Items[I].Target != Items[J].Target)
          continue;
        bool TruthSame = Items[I].TruthLabel == Items[J].TruthLabel;
        bool PredSame = A.KeyOf(Items[I]) == A.KeyOf(Items[J]);
        if (PredSame && TruthSame)
          ++TP;
        else if (PredSame && !TruthSame)
          ++FP;
        else if (!PredSame && TruthSame)
          ++FN;
      }
    }
    Score.Precision = (TP + FP) ? double(TP) / double(TP + FP) : 1.0;
    Score.Recall = (TP + FN) ? double(TP) / double(TP + FN) : 1.0;

    // Cluster purity: each item scores 1 if its truth label is its
    // cluster's majority label.
    std::map<std::string, std::map<std::string, size_t>> Clusters;
    for (const GroundTruthItem &Item : Items)
      ++Clusters[Item.Target + "\x1f" + A.KeyOf(Item)][Item.TruthLabel];
    size_t MajoritySum = 0;
    for (const auto &[Key, Labels] : Clusters) {
      size_t Majority = 0;
      for (const auto &[Label, Count] : Labels)
        Majority = std::max(Majority, Count);
      MajoritySum += Majority;
    }
    Score.Purity = Items.empty() ? 1.0 : double(MajoritySum) / Items.size();
    Score.Clusters = Clusters.size();
    Scores.push_back(std::move(Score));
  }
  return Scores;
}
