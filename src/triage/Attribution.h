//===- triage/Attribution.h - Bug attribution record ------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The record triage produces for one bug bucket: which pass (and which
/// instance of that pass in the pipeline) is responsible for the bug, how
/// the answer was reached (bisection probes, localization runs), and — when
/// attribution was declined — why. The record is a second deduplication
/// axis: two buckets on the same target with the same culpritLabel() are
/// the same root cause as far as pass-sequence bisection can tell, which
/// cross-cuts the transformation-type axis the paper evaluates.
///
//===----------------------------------------------------------------------===//

#ifndef TRIAGE_ATTRIBUTION_H
#define TRIAGE_ATTRIBUTION_H

#include "opt/Passes.h"
#include "support/BinaryIO.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spvfuzz {
namespace triage {

/// How far attribution got for one bug bucket.
enum class TriageVerdict : uint8_t {
  /// The culprit pass instance was pinned down exactly: bisection for
  /// crashes, differential localization for miscompilations.
  ExactPass,
  /// Attribution was deterministically declined. Hangs carry no pass
  /// identity a prefix re-run could recover under a finite budget, and
  /// flaky signatures draw fresh attempts per probe — bisecting either
  /// risks naming a *wrong* pass, which is worse than naming none.
  /// Reason says which case applied.
  Unattributable,
  /// The stored reproducer no longer produces the recorded signature under
  /// the solid bug host (should not happen for store-recorded buckets).
  NoRepro,
};

/// "exact-pass" / "unattributable" / "no-repro".
const char *triageVerdictName(TriageVerdict V);

/// Parses a verdict name; returns false on unknown names.
bool triageVerdictFromName(const std::string &Name, TriageVerdict &Out);

/// The attribution for one bug bucket. Pure function of (target spec,
/// reproducer, input, signature): identical at any job count, on any
/// worker, which is what lets the store persist it and the journal carry
/// it without breaking the campaign determinism contract.
struct BugAttribution {
  std::string Target;
  std::string Signature;
  TriageVerdict Verdict = TriageVerdict::Unattributable;
  /// The culprit pass; valid iff Verdict == ExactPass.
  OptPassKind Culprit = OptPassKind::FrontendCheck;
  /// 0-based position of the culprit pass in the target's pipeline.
  uint32_t PipelineIndex = 0;
  /// Ordinal of the culprit among same-kind passes in the pipeline prefix
  /// before it ("the second dce", for pipelines that repeat a pass).
  uint32_t InstanceIndex = 0;
  /// Pipeline-prefix evaluations the bisection decided on (probe count,
  /// including the initial full-pipeline reproduction check).
  uint32_t BisectionChecks = 0;
  /// Individual passes actually executed across all probes. Memoized
  /// prefix evaluation makes this at most the pipeline length — not
  /// checks * length — which is the "almost for free" of triage.
  uint32_t PassRuns = 0;
  /// Prefix lengths probed, in decision order. The determinism witness:
  /// tests assert this sequence is bit-identical at any job count.
  std::vector<uint32_t> Probes;
  /// Differential localization: 0-based index of the first pass whose
  /// intermediate module diverges observably from the reference
  /// semantics; -1 when localization did not run.
  int32_t DivergenceIndex = -1;
  /// Reference executions spent on localization (baseline + per-prefix).
  uint32_t LocalizationRuns = 0;
  /// Why attribution stopped, for Unattributable / NoRepro verdicts.
  std::string Reason;

  /// The dedup key this record contributes: "dead-branch-elim#0" for an
  /// exact attribution, "(unattributable)" / "(no-repro)" otherwise.
  /// Unattributable buckets on one target share a label by design — triage
  /// refuses to split what it cannot tell apart.
  std::string culpritLabel() const;
};

/// Serializes \p Attr as the store's ATTR section payload.
void writeAttributionBinary(ByteWriter &W, const BugAttribution &Attr);

/// Decodes an ATTR payload; false (with the reader's diagnostic) on
/// truncated or semantically invalid input.
bool readAttributionBinary(ByteReader &R, BugAttribution &Out);

/// Renders \p Attr as a JSON object (no trailing newline), for embedding
/// under the "attribution" key of a bucket's meta.json.
std::string attributionJson(const BugAttribution &Attr);

} // namespace triage
} // namespace spvfuzz

#endif // TRIAGE_ATTRIBUTION_H
