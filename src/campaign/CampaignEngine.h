//===- campaign/CampaignEngine.h - Parallel campaign engine -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign execution engine: owns the corpus, the tool configurations,
/// the target set and a worker pool, and fans per-test jobs out over the
/// pool. Each job owns one test end to end — fuzzing the variant from its
/// deterministic per-job seed (testSeed over (CampaignSeed, SeedStream,
/// TestIndex)) and evaluating it on every target — and results are always
/// aggregated in test-index order, so an N-thread run is bit-identical to
/// the serial run: same TestEvaluations, same reduction records, same dedup
/// classes, same metrics counter totals. See DESIGN.md, "Concurrency
/// model".
///
//===----------------------------------------------------------------------===//

#ifndef CAMPAIGN_CAMPAIGNENGINE_H
#define CAMPAIGN_CAMPAIGNENGINE_H

#include "campaign/Campaign.h"
#include "campaign/Experiments.h"
#include "core/ReductionPipeline.h"
#include "support/ThreadPool.h"
#include "target/EvalCache.h"
#include "target/Harness.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>

namespace spvfuzz {

/// How a campaign executes: parallelism, the campaign seed, the fuzzing
/// volume per test and an optional wall-clock budget. One ExecutionPolicy
/// constructs one CampaignEngine; the per-experiment structs
/// (BugFindingConfig, ReductionConfig) keep only scale knobs.
struct ExecutionPolicy {
  /// Worker threads. 1 (the default) runs every job inline on the calling
  /// thread; 0 means one worker per hardware thread. Any value yields
  /// bit-identical campaign results.
  size_t Jobs = 1;
  /// The campaign seed: derives the corpus and every per-test fuzzer seed.
  uint64_t Seed = 2021;
  /// Transformations applied per generated test (paper: 2000).
  uint32_t TransformationLimit = 300;
  /// Soft wall-clock budget measured from engine construction; zero means
  /// unlimited. A run that hits the deadline stops issuing work and returns
  /// truncated results — deadline-limited runs are therefore *not*
  /// deterministic across thread counts.
  std::chrono::milliseconds Deadline{0};
  /// Prefix-snapshot spacing for the reducer's incremental replay
  /// (core/ReplayCache.h); 0 makes every reduction check replay from the
  /// original module. Never changes results, only their cost.
  size_t ReplaySnapshotInterval = 8;
  /// Approximate byte budget for the engine-wide evaluation cache that
  /// memoizes TargetRun outcomes across reduction checks and dedup
  /// (target/EvalCache.h); 0 disables memoization. Never changes results.
  size_t EvalCacheBudget = 64ull << 20;
  /// When true and Jobs != 1, spirv-fuzz-style reductions evaluate each
  /// delta-debugging pass's candidates speculatively on the worker pool
  /// (acceptance still commits in serial pass order, so results and Checks
  /// stay bit-identical to a serial run). glsl-fuzz reductions, which have
  /// no speculative path, keep running in parallel across reductions.
  bool SpeculativeReduction = true;
  /// Simulated step budget per target attempt (target/Harness.h); 0 =
  /// unlimited. The default equals the interpreter's own step limit, so
  /// solid targets behave exactly as before the harness existed.
  uint64_t TargetDeadlineSteps = 1ull << 22;
  /// Voting-pool size for runs against nondeterministic (flaky) targets:
  /// an interesting verdict must reproduce on a strict majority.
  uint32_t FlakyRetries = 5;
  /// Consecutive hard tool-error runs before a target is quarantined
  /// (sidelined from subsequent scheduling waves).
  uint32_t QuarantineThreshold = 3;
  /// Directory of the persistent campaign store, empty = no persistence.
  /// Consumed by the CLI/bench layer, which constructs a CampaignStore
  /// there and attaches it via setCheckpointer (the engine itself never
  /// touches the filesystem).
  std::string StorePath;
  /// Scheduling waves between checkpoint saves when a checkpointer is
  /// attached. 1 (the default) saves after every wave; larger values trade
  /// resume granularity for less write traffic. Never changes results.
  size_t CheckpointInterval = 1;
  /// When true, the CLI resumes the campaign found in StorePath instead of
  /// requiring a fresh store.
  bool Resume = false;
  /// Execution engine for every target run (exec/Executable.h). Lowered
  /// and Tree produce byte-identical campaign outputs; Tree exists as the
  /// differential oracle and for the CI equivalence gate.
  ExecEngine Engine = ExecEngine::Lowered;
  /// Uniform inputs evaluated per (test, target) in the bug-finding scan:
  /// 1 (the default) is the paper's single-input differential check; K > 1
  /// runs uniformInputMatrix through batched evaluation — one compile per
  /// module, K executions. Changing K changes which bugs a scan can see
  /// (more inputs, more miscompilation coverage), never determinism.
  size_t UniformInputs = 1;
  /// Approximate byte budget for the engine-wide compiled-artifact cache
  /// (target/ExecutableCache.h); 0 disables artifact sharing. Never
  /// changes results or counter totals, only cost.
  size_t ExecutableCacheBudget = 64ull << 20;
  /// Chunk-candidate ordering for the reduce phase's delta debugging
  /// (core/ReductionPipeline.h). Paper (the default) is the fixed
  /// back-to-front scan; Learned orders candidates by the online
  /// ProbabilisticModel's expected payoff. Both are bit-identical across
  /// job counts, but they produce different (each internally
  /// deterministic) reduction schedules, so the knob is part of the
  /// campaign identity when non-default.
  CandidateOrder ReduceOrder = CandidateOrder::Paper;
  /// Run the IR-level post-reduction pass list against each reproducer's
  /// reference module after sequence reduction (off by default; changes
  /// reduction records, so part of the campaign identity when on).
  bool PostReduce = false;
  /// Post-reduction passes to run when PostReduce is set, by name; empty =
  /// the full standard list.
  std::vector<std::string> PostReducePasses;
  /// Run the triage post-pass (pass-sequence bisection + differential
  /// localization) over this campaign's bug buckets after reduction.
  /// Consumed by the CLI/bench layer, like StorePath: attribution is a
  /// pure function of each reproducer, runs strictly above the engine,
  /// and never shapes reduction results — so it is deliberately not part
  /// of the campaign config digest.
  bool Triage = false;

  ExecutionPolicy &withJobs(size_t Count) {
    Jobs = Count;
    return *this;
  }
  ExecutionPolicy &withSeed(uint64_t Value) {
    Seed = Value;
    return *this;
  }
  ExecutionPolicy &withTransformationLimit(uint32_t Limit) {
    TransformationLimit = Limit;
    return *this;
  }
  ExecutionPolicy &withDeadline(std::chrono::milliseconds Budget) {
    Deadline = Budget;
    return *this;
  }
  ExecutionPolicy &withReplaySnapshotInterval(size_t Interval) {
    ReplaySnapshotInterval = Interval;
    return *this;
  }
  ExecutionPolicy &withEvalCacheBudget(size_t Bytes) {
    EvalCacheBudget = Bytes;
    return *this;
  }
  ExecutionPolicy &withSpeculativeReduction(bool On) {
    SpeculativeReduction = On;
    return *this;
  }
  ExecutionPolicy &withTargetDeadlineSteps(uint64_t Steps) {
    TargetDeadlineSteps = Steps;
    return *this;
  }
  ExecutionPolicy &withFlakyRetries(uint32_t Attempts) {
    FlakyRetries = Attempts;
    return *this;
  }
  ExecutionPolicy &withQuarantineThreshold(uint32_t Threshold) {
    QuarantineThreshold = Threshold;
    return *this;
  }
  ExecutionPolicy &withStorePath(std::string Path) {
    StorePath = std::move(Path);
    return *this;
  }
  ExecutionPolicy &withCheckpointInterval(size_t Waves) {
    CheckpointInterval = Waves;
    return *this;
  }
  ExecutionPolicy &withResume(bool On) {
    Resume = On;
    return *this;
  }
  ExecutionPolicy &withEngine(ExecEngine E) {
    Engine = E;
    return *this;
  }
  ExecutionPolicy &withUniformInputs(size_t Count) {
    UniformInputs = Count;
    return *this;
  }
  ExecutionPolicy &withExecutableCacheBudget(size_t Bytes) {
    ExecutableCacheBudget = Bytes;
    return *this;
  }
  ExecutionPolicy &withReduceOrder(CandidateOrder Order) {
    ReduceOrder = Order;
    return *this;
  }
  ExecutionPolicy &withPostReduce(bool On) {
    PostReduce = On;
    return *this;
  }
  ExecutionPolicy &withPostReducePasses(std::vector<std::string> Names) {
    PostReducePasses = std::move(Names);
    return *this;
  }
  ExecutionPolicy &withTriage(bool On) {
    Triage = On;
    return *this;
  }
};

/// A complete-wave snapshot of one evaluation phase. Evals holds every
/// test evaluated so far (in test-index order); Breakers is the harness
/// breaker state at exactly the NextWave boundary — the two are saved
/// together at the serial commit point, so a resumed run continues from a
/// state the uninterrupted run also passed through.
struct EvaluationCheckpoint {
  std::string Phase;
  size_t NextWave = 0;
  bool Complete = false;
  std::vector<TestEvaluation> Evals;
  std::map<std::string, Harness::BreakerState> Breakers;
};

/// A complete-wave snapshot of one reduction phase (one tool's loop in
/// runReductions): the accepted records so far plus the serial cap/budget
/// state (ReductionsDone, SignatureCounts) and breaker state at the
/// NextWave boundary.
struct ReductionCheckpoint {
  std::string Phase;
  size_t NextWave = 0;
  bool Complete = false;
  size_t ReductionsDone = 0;
  std::map<std::pair<std::string, std::string>, size_t> SignatureCounts;
  std::vector<ReductionRecord> Records;
  std::map<std::string, Harness::BreakerState> Breakers;
};

/// The engine's persistence hook. The engine checkpoints at wave
/// boundaries — the serial commit points where results and breaker state
/// are schedule-independent — and hands reproducer artifacts over as
/// reductions complete. Implemented by store/CampaignStore.h; the engine
/// only sees this interface, keeping campaign free of any store
/// dependency. Checkpoints never capture partial waves: an interrupted
/// wave is simply recomputed (deterministically) on resume.
class CampaignCheckpointer {
public:
  virtual ~CampaignCheckpointer() = default;

  /// Loads the checkpoint saved for \p Phase; false if none exists.
  virtual bool loadEvaluation(const std::string &Phase,
                              EvaluationCheckpoint &Out) = 0;
  virtual void saveEvaluation(const EvaluationCheckpoint &Checkpoint) = 0;

  virtual bool loadReduction(const std::string &Phase,
                             ReductionCheckpoint &Out) = 0;
  virtual void saveReduction(const ReductionCheckpoint &Checkpoint) = 0;

  /// Called once per completed reduction (in acceptance order, on the
  /// aggregation thread) with the artifacts a bug report needs: the
  /// reference module/input the reproducer applies to, the reduced variant
  /// and the minimized transformation sequence.
  virtual void recordReproducer(const ReductionRecord &Record,
                                const Module &Original,
                                const ShaderInput &Input,
                                const Module &Reduced,
                                const TransformationSequence &Minimized) = 0;
};

/// In-process companion to CampaignCheckpointer::recordReproducer: called
/// with the same arguments, at the same serial commit point, in the same
/// acceptance order. Lets the CLI/bench layer capture reproducer artifacts
/// for post-passes (triage attribution, ground-truth scoring) without the
/// engine growing a dependency on those layers — and without a store.
using ReproducerSink = std::function<void(
    const ReductionRecord &Record, const Module &Original,
    const ShaderInput &Input, const Module &Reduced,
    const TransformationSequence &Minimized)>;

/// One schedulable unit of an evaluation phase: the tests in
/// [WaveStart, WaveEnd) of (Tool, Count, CrashesOnly), evaluated against
/// the full scan target set minus the targets quarantined at the wave
/// boundary. A shard is pure compute — breaker commits, observer events
/// and checkpoints all stay with the engine's serial fold — so shards can
/// be farmed out to other threads or processes without touching the
/// determinism contract.
struct ShardRequest {
  /// The engine phase key the shard belongs to (e.g.
  /// "eval/spirv-fuzz/100").
  std::string Phase;
  /// Tool name (resolvable via CampaignEngine::findTool).
  std::string Tool;
  /// Phase total (tests per tool), part of the phase identity.
  uint64_t Count = 0;
  bool CrashesOnly = false;
  /// Wave bounds in test indices: [WaveStart, WaveEnd).
  uint64_t WaveStart = 0;
  uint64_t WaveEnd = 0;
  /// Names of targets quarantined at this wave's boundary (the serial
  /// quarantine snapshot), in fleet order. The shard evaluates every scan
  /// target not named here.
  std::vector<std::string> Sidelined;
};

/// The engine's scale-out hook: when attached, evaluateTests asks the
/// provider for each wave's evaluations instead of computing them on the
/// local pool. The provider returns exactly the TestEvaluations the local
/// computation would produce (evaluateShard is the reference
/// implementation), in test-index order; everything decision-bearing —
/// breaker commits, bug events, checkpoints — still happens in the
/// engine's serial fold, so a provider-backed run is byte-identical to a
/// local one. Implemented by serve/Coordinator.h; the engine only sees
/// this interface, keeping campaign free of any serve dependency.
class ShardProvider {
public:
  virtual ~ShardProvider() = default;

  /// A phase is starting: \p Prototype carries the phase identity and the
  /// quarantine mask at \p StartWave; waves in [StartWave, Count) are
  /// about to be requested in order.
  virtual void beginPhase(const ShardRequest &Prototype,
                          size_t StartWave) = 0;

  /// Produces the evaluations of one wave (WaveEnd - WaveStart entries,
  /// in test-index order). Returns false to decline, in which case the
  /// engine computes the shard locally.
  virtual bool takeShard(const ShardRequest &Request,
                         std::vector<TestEvaluation> &Out) = 0;

  /// The phase ended (\p Complete is false when the deadline cut it
  /// short).
  virtual void endPhase(const std::string &Phase, bool Complete) = 0;
};

/// The engine's observability hook: decision events delivered at serial
/// commit points on the aggregation thread, in test-index order, so the
/// callback sequence is identical at any job count. Implemented by
/// obs/Journal.h (JournalObserver); the engine only sees this interface,
/// keeping campaign free of any obs dependency. All callbacks default to
/// no-ops so observers override only what they consume.
class CampaignObserver {
public:
  virtual ~CampaignObserver() = default;

  /// A phase is (re)starting: waves < \p StartWave were restored from a
  /// checkpoint; waves in [StartWave, Total) are about to be computed (and
  /// their events re-emitted).
  virtual void onPhaseStarted(const std::string & /*Phase*/,
                              size_t /*StartWave*/, size_t /*Total*/) {}
  /// A (target, signature) bug observation committed for test \p TestIndex
  /// in the wave ending at boundary \p WaveEnd.
  virtual void onBugFound(const std::string & /*Phase*/, size_t /*WaveEnd*/,
                          size_t /*TestIndex*/, const std::string & /*Target*/,
                          const std::string & /*Signature*/) {}
  /// A breaker commit newly quarantined \p Target.
  virtual void onTargetQuarantined(const std::string & /*Phase*/,
                                   size_t /*WaveEnd*/,
                                   const std::string & /*Target*/) {}
  /// A reduction completed and its record was accepted.
  virtual void onReductionStep(const std::string & /*Phase*/,
                               size_t /*WaveEnd*/,
                               const ReductionRecord & /*Record*/) {}
  /// One IR-level post-reduction pass of \p Record's reduction did work
  /// (Attempted > 0). Emitted after onReductionStep, in pass-list order;
  /// never emitted when the policy's PostReduce is off.
  virtual void onPostReduceStep(const std::string & /*Phase*/,
                                size_t /*WaveEnd*/,
                                const ReductionRecord & /*Record*/,
                                const PostReducePassStats & /*Stat*/) {}
  /// The wave ending at boundary \p WaveEnd (of \p Total) committed;
  /// \p Count is the phase's running tally (bugs or reductions so far).
  virtual void onWaveCommitted(const std::string & /*Phase*/,
                               size_t /*WaveEnd*/, size_t /*Total*/,
                               size_t /*Count*/) {}
  /// A checkpoint for \p Phase at boundary \p WaveEnd was saved.
  virtual void onCheckpointSaved(const std::string & /*Phase*/,
                                 size_t /*WaveEnd*/) {}
};

/// The campaign engine. The sole campaign entry point since the loose
/// free-function drivers (runBugFinding / runReductions / runDedup) were
/// removed. Every target run goes through the fault-tolerance harness
/// (target/Harness.h): step budgets, retry/voting on flaky targets, and
/// per-target quarantine, with breaker commits strictly serial in
/// test-index order so faulty-fleet campaigns stay bit-identical at any
/// job count.
class CampaignEngine {
public:
  /// Builds the corpus, tools and targets up front. An unset CorpusSpec
  /// seed defaults to the policy seed; an unset ToolsetSpec transformation
  /// limit defaults to the policy limit; an empty fleet defaults to
  /// TargetFleet::standard(). The deadline clock starts here.
  explicit CampaignEngine(ExecutionPolicy Policy = ExecutionPolicy{},
                          CorpusSpec CorpusOpts = CorpusSpec{},
                          ToolsetSpec ToolOpts = ToolsetSpec{},
                          TargetFleet FleetIn = TargetFleet{});
  CampaignEngine(const CampaignEngine &) = delete;
  CampaignEngine &operator=(const CampaignEngine &) = delete;
  ~CampaignEngine();

  const ExecutionPolicy &policy() const { return Policy; }
  const Corpus &corpus() const { return CorpusData; }
  const std::vector<ToolConfig> &tools() const { return Tools; }
  const TargetFleet &fleet() const { return Fleet; }
  const std::vector<Target> &targets() const { return Fleet.targets(); }
  /// The fault-tolerance harness (breaker state, harnessed target views).
  const Harness &harness() const { return *Har; }
  /// The engine-wide evaluation cache (hit/miss/byte accounting for tests
  /// and bench footers).
  const EvalCache &evalCache() const { return *Eval; }
  /// The engine-wide compiled-artifact cache (hit/miss/byte accounting).
  const ExecutableCache &executableCache() const { return *ExeC; }

  /// Looks a tool up by name; nullptr if the engine does not have it.
  const ToolConfig *findTool(const std::string &Name) const;

  /// Attaches (or detaches, with nullptr) the persistence hook. The
  /// checkpointer must outlive the engine's campaign calls. Not owned.
  void setCheckpointer(CampaignCheckpointer *C) { Checkpointer = C; }
  CampaignCheckpointer *checkpointer() const { return Checkpointer; }

  /// Attaches (or detaches, with nullptr) the in-process reproducer hook;
  /// fires beside the checkpointer's recordReproducer with identical
  /// arguments and ordering.
  void setReproducerSink(ReproducerSink S) { Sink = std::move(S); }
  const ReproducerSink &reproducerSink() const { return Sink; }

  /// Attaches (or detaches, with nullptr) the observability hook. Events
  /// fire on the aggregation thread at serial commit points; the observer
  /// must outlive the engine's campaign calls. Not owned.
  void setObserver(CampaignObserver *O) { Observer = O; }
  CampaignObserver *observer() const { return Observer; }

  /// Attaches (or detaches, with nullptr) the scale-out hook. When set,
  /// evaluateTests sources each wave's evaluations from the provider and
  /// keeps only the serial fold; a provider that declines a shard falls
  /// back to local computation. Not owned.
  void setShardProvider(ShardProvider *P) { Provider = P; }
  ShardProvider *shardProvider() const { return Provider; }

  /// Computes one shard purely: evaluates tests [\p WaveStart, \p WaveEnd)
  /// of \p Tool against every scan target not named in \p Sidelined, in
  /// parallel per the policy, and returns the evaluations in test-index
  /// order. No breaker commits, no observer events, no checkpoints, no
  /// deadline — this is the worker-side unit of work behind ShardProvider,
  /// and byte-for-byte what evaluateTests would compute for the same wave
  /// under the same quarantine mask.
  std::vector<TestEvaluation>
  evaluateShard(const ToolConfig &Tool, size_t WaveStart, size_t WaveEnd,
                bool CrashesOnly,
                const std::vector<std::string> &Sidelined);

  /// Deterministically re-runs the fuzzer behind (\p Tool, \p TestIndex).
  FuzzResult regenerate(const ToolConfig &Tool, size_t TestIndex,
                        size_t &ReferenceIndexOut) const;

  /// Evaluates tests [0, \p Count) of \p Tool on every target, in parallel
  /// per the policy. The result vector is in test-index order regardless of
  /// Jobs; it is shorter than \p Count only if the deadline expired.
  std::vector<TestEvaluation> evaluateTests(const ToolConfig &Tool,
                                            size_t Count,
                                            bool CrashesOnly = false);

  /// Table 3 / Figure 7 driver (RQ1).
  BugFindingData runBugFinding(const BugFindingConfig &Config);

  /// ğ4.2 reduction-quality driver (RQ2). Cap and budget decisions
  /// (CapPerSignature, MaxReductionsPerTool) are applied serially, in
  /// test-index order, on the aggregation thread, so the set of reductions
  /// run is identical at any job count.
  ReductionData runReductions(const ReductionConfig &Config);

  /// Table 4 driver (RQ3): crash-only reductions + Figure 6 dedup.
  DedupData runDedup(const ReductionConfig &Config);

  /// True once the policy deadline (if any) has passed.
  bool deadlineExpired() const;

  /// Tests evaluated per scheduling wave. Fixed — independent of Jobs — so
  /// early-stop and cap decisions always see the same evaluated set.
  static constexpr size_t ShardSize = 32;

private:
  /// Runs one wave: inline when the policy is serial, else submitted to the
  /// pool with futures collected in submission order.
  template <typename ResultT>
  std::vector<ResultT> runJobs(std::vector<std::function<ResultT()>> Jobs);

  /// Returns true (and latches cancellation) once the deadline has passed.
  bool checkDeadline();
  bool cancelled() const {
    return CancelFlag.load(std::memory_order_relaxed);
  }

  ExecutionPolicy Policy;
  Corpus CorpusData;
  std::vector<ToolConfig> Tools;
  TargetFleet Fleet;
  /// Memoizes TargetRun outcomes across the reduction and dedup phases
  /// (deterministic targets only; the harness bypasses it for flaky ones).
  std::unique_ptr<EvalCache> Eval;
  /// Shares compiled artifacts (pipeline output + lowered bytecode) across
  /// every phase; counter-replaying hits keep metric totals cache-blind.
  std::unique_ptr<ExecutableCache> ExeC;
  /// Harnessed views of the fleet plus quarantine breakers. A stable
  /// member (not built per phase) because interestingness tests capture
  /// the harnessed wrappers by pointer.
  std::unique_ptr<Harness> Har;
  std::unique_ptr<ThreadPool> Pool; // null when Jobs == 1
  std::chrono::steady_clock::time_point Start;
  std::atomic<bool> CancelFlag{false};
  CampaignCheckpointer *Checkpointer = nullptr;
  ReproducerSink Sink;
  CampaignObserver *Observer = nullptr;
  ShardProvider *Provider = nullptr;
};

} // namespace spvfuzz

#endif // CAMPAIGN_CAMPAIGNENGINE_H
