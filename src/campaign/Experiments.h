//===- campaign/Experiments.h - Drivers for the paper's experiments -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers that regenerate the paper's tables and figures. Each returns
/// structured data; the bench binaries render it in the paper's layout.
/// Scale knobs default to laptop-friendly values and honour the
/// REPRO_TESTS / REPRO_REDUCTIONS environment variables.
///
//===----------------------------------------------------------------------===//

#ifndef CAMPAIGN_EXPERIMENTS_H
#define CAMPAIGN_EXPERIMENTS_H

#include "campaign/Campaign.h"
#include "core/Dedup.h"
#include "core/Reducer.h"
#include "support/Statistics.h"

#include <set>

namespace spvfuzz {

/// Reads a size_t environment override, returning \p Default when unset.
size_t envSize(const char *Name, size_t Default);

//===----------------------------------------------------------------------===//
// Table 3 + Figure 7 (RQ1)
//===----------------------------------------------------------------------===//

/// Scale knobs for Table 3 / Figure 7. Seed and fuzzing volume live in the
/// engine's ExecutionPolicy, not here.
struct BugFindingConfig {
  size_t TestsPerTool = 400; // paper: 10,000
  size_t NumGroups = 10;     // disjoint groups for the MWU populations
};

struct ToolTargetStats {
  std::set<std::string> Distinct;
  std::vector<std::set<std::string>> PerGroup;

  std::vector<double> groupCounts() const {
    std::vector<double> Counts;
    for (const std::set<std::string> &Group : PerGroup)
      Counts.push_back(static_cast<double>(Group.size()));
    return Counts;
  }
};

struct BugFindingData {
  std::vector<std::string> ToolNames;
  std::vector<std::string> TargetNames;
  /// Stats[tool][target].
  std::map<std::string, std::map<std::string, ToolTargetStats>> Stats;
  BugFindingConfig Config;

  /// Aggregates one tool across all targets ("All" row of Table 3):
  /// signatures are qualified by target name before union.
  ToolTargetStats allTargets(const std::string &Tool) const;
};

/// The seven regions of a three-set Venn diagram (Figure 7).
struct VennCounts {
  size_t OnlyA = 0, OnlyB = 0, OnlyC = 0;
  size_t AB = 0, AC = 0, BC = 0, ABC = 0;
};

/// Computes Figure 7's regions for (A, B, C) = (spirv-fuzz,
/// spirv-fuzz-simple, glsl-fuzz) on one target, or on "All" (union with
/// target-qualified signatures).
VennCounts vennForTarget(const BugFindingData &Data,
                         const std::string &TargetName);

//===----------------------------------------------------------------------===//
// ğ4.2 reduction quality (RQ2)
//===----------------------------------------------------------------------===//

/// Scale knobs for RQ2/RQ3. Seed and fuzzing volume live in the engine's
/// ExecutionPolicy, not here.
struct ReductionConfig {
  size_t TestsPerTool = 300;
  size_t CapPerSignature = 8; // paper: 100
  size_t MaxReductionsPerTool = 50;
  /// Restrict to these targets; empty = the GPU-less set of ğ4.2.
  std::vector<std::string> TargetNames;
  /// Restrict to these tools; empty = spirv-fuzz and glsl-fuzz.
  std::vector<std::string> ToolNames;
  bool CrashesOnly = false;
};

struct ReductionRecord {
  std::string Tool;
  std::string TargetName;
  std::string Signature;
  size_t TestIndex = 0;
  size_t OriginalCount = 0;  // instructions in the original program
  size_t UnreducedCount = 0; // instructions in the unreduced variant
  size_t ReducedCount = 0;   // instructions in the reduced variant
  size_t MinimizedLength = 0;
  size_t Checks = 0;
  /// Speculative evaluations wasted by the parallel reducer (0 when
  /// speculation is off). Unlike every other field this is a cost
  /// measurement, not a result: it varies with scheduling and is excluded
  /// from cross-job-count determinism comparisons.
  size_t SpeculativeChecks = 0;
  std::set<TransformationKind> Types; // dedup types of the minimized seq
  /// Per-pass accounting of the IR-level post-reduction stage; empty when
  /// the policy ran sequence reduction only.
  std::vector<PostReducePassStats> PostStats;

  long delta() const {
    return static_cast<long>(ReducedCount) - static_cast<long>(OriginalCount);
  }
  long unreducedDelta() const {
    return static_cast<long>(UnreducedCount) -
           static_cast<long>(OriginalCount);
  }
};

struct ReductionData {
  std::vector<ReductionRecord> Records;

  std::vector<ReductionRecord> forTool(const std::string &Tool) const;
  static double medianDelta(const std::vector<ReductionRecord> &Records);
  static double medianUnreducedDelta(const std::vector<ReductionRecord> &Rs);
};

//===----------------------------------------------------------------------===//
// Table 4 (RQ3)
//===----------------------------------------------------------------------===//

struct DedupTargetResult {
  std::string TargetName;
  size_t Tests = 0;    // reduced test cases fed to the algorithm
  size_t Sigs = 0;     // distinct crash signatures they exhibit
  size_t Reports = 0;  // tests the algorithm recommends investigating
  size_t Distinct = 0; // distinct signatures covered by the reports
  size_t Dups = 0;     // Reports - Distinct
};

struct DedupData {
  std::vector<DedupTargetResult> PerTarget;
  DedupTargetResult Total;
};

} // namespace spvfuzz

#endif // CAMPAIGN_EXPERIMENTS_H
