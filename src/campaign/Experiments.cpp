//===- campaign/Experiments.cpp - Drivers for the paper's experiments ------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"

#include "baseline/BaselineReducer.h"
#include "core/FunctionShrinker.h"
#include "core/Reducer.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdlib>

using namespace spvfuzz;

size_t spvfuzz::envSize(const char *Name, size_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  unsigned long long Parsed = strtoull(Value, &End, 10);
  if (End == Value || Parsed == 0)
    return Default;
  return static_cast<size_t>(Parsed);
}

//===----------------------------------------------------------------------===//
// Table 3 + Figure 7
//===----------------------------------------------------------------------===//

ToolTargetStats BugFindingData::allTargets(const std::string &Tool) const {
  ToolTargetStats All;
  All.PerGroup.resize(Config.NumGroups);
  auto ToolIt = Stats.find(Tool);
  if (ToolIt == Stats.end())
    return All;
  for (const auto &[TargetName, TargetStats] : ToolIt->second) {
    for (const std::string &Sig : TargetStats.Distinct)
      All.Distinct.insert(TargetName + ":" + Sig);
    for (size_t G = 0; G < TargetStats.PerGroup.size() &&
                       G < All.PerGroup.size();
         ++G)
      for (const std::string &Sig : TargetStats.PerGroup[G])
        All.PerGroup[G].insert(TargetName + ":" + Sig);
  }
  return All;
}

BugFindingData spvfuzz::runBugFinding(const BugFindingConfig &Config) {
  BugFindingData Data;
  Data.Config = Config;

  Corpus C = makeCorpus(Config.Seed);
  std::vector<Target> Targets = standardTargets();
  std::vector<ToolConfig> Tools = standardTools(Config.TransformationLimit);

  for (const Target &T : Targets)
    Data.TargetNames.push_back(T.name());

  size_t GroupSize = std::max<size_t>(1, Config.TestsPerTool / Config.NumGroups);

  for (const ToolConfig &Tool : Tools) {
    Data.ToolNames.push_back(Tool.Name);
    std::map<std::string, ToolTargetStats> &PerTarget = Data.Stats[Tool.Name];
    for (const Target &T : Targets)
      PerTarget[T.name()].PerGroup.resize(Config.NumGroups);

    CampaignProgress Progress("bug-finding/" + Tool.Name,
                              Config.TestsPerTool);
    for (size_t TestIndex = 0; TestIndex < Config.TestsPerTool; ++TestIndex) {
      TestEvaluation Eval =
          evaluateTest(C, Tool, Targets, Config.Seed, TestIndex);
      size_t Group = std::min(Config.NumGroups - 1, TestIndex / GroupSize);
      for (const auto &[TargetName, Signature] : Eval.Signatures) {
        ToolTargetStats &Stats = PerTarget[TargetName];
        Stats.Distinct.insert(Signature);
        Stats.PerGroup[Group].insert(Signature);
        Progress.recordSignature(TargetName, Signature);
      }
      Progress.advance();
    }
  }
  return Data;
}

VennCounts spvfuzz::vennForTarget(const BugFindingData &Data,
                                  const std::string &TargetName) {
  auto SetFor = [&](const std::string &Tool) -> std::set<std::string> {
    if (TargetName == "All")
      return Data.allTargets(Tool).Distinct;
    auto ToolIt = Data.Stats.find(Tool);
    if (ToolIt == Data.Stats.end())
      return {};
    auto TargetIt = ToolIt->second.find(TargetName);
    if (TargetIt == ToolIt->second.end())
      return {};
    return TargetIt->second.Distinct;
  };
  std::set<std::string> A = SetFor("spirv-fuzz");
  std::set<std::string> B = SetFor("spirv-fuzz-simple");
  std::set<std::string> C = SetFor("glsl-fuzz");

  std::set<std::string> Union;
  Union.insert(A.begin(), A.end());
  Union.insert(B.begin(), B.end());
  Union.insert(C.begin(), C.end());

  VennCounts Counts;
  for (const std::string &Sig : Union) {
    bool InA = A.count(Sig), InB = B.count(Sig), InC = C.count(Sig);
    if (InA && InB && InC)
      ++Counts.ABC;
    else if (InA && InB)
      ++Counts.AB;
    else if (InA && InC)
      ++Counts.AC;
    else if (InB && InC)
      ++Counts.BC;
    else if (InA)
      ++Counts.OnlyA;
    else if (InB)
      ++Counts.OnlyB;
    else
      ++Counts.OnlyC;
  }
  return Counts;
}

//===----------------------------------------------------------------------===//
// Reductions (RQ2)
//===----------------------------------------------------------------------===//

std::vector<ReductionRecord>
ReductionData::forTool(const std::string &Tool) const {
  std::vector<ReductionRecord> Out;
  for (const ReductionRecord &Record : Records)
    if (Record.Tool == Tool)
      Out.push_back(Record);
  return Out;
}

double
ReductionData::medianDelta(const std::vector<ReductionRecord> &Records) {
  std::vector<double> Deltas;
  for (const ReductionRecord &Record : Records)
    Deltas.push_back(static_cast<double>(Record.delta()));
  return median(std::move(Deltas));
}

double ReductionData::medianUnreducedDelta(
    const std::vector<ReductionRecord> &Records) {
  std::vector<double> Deltas;
  for (const ReductionRecord &Record : Records)
    Deltas.push_back(static_cast<double>(Record.unreducedDelta()));
  return median(std::move(Deltas));
}

ReductionData spvfuzz::runReductions(const ReductionConfig &Config) {
  ReductionData Data;
  Corpus C = makeCorpus(Config.Seed);
  std::vector<Target> AllTargets = standardTargets();
  std::vector<ToolConfig> AllTools = standardTools(Config.TransformationLimit);

  std::vector<std::string> WantedTargets = Config.TargetNames;
  if (WantedTargets.empty())
    WantedTargets = gpulessTargetNames();
  std::vector<std::string> WantedTools = Config.ToolNames;
  if (WantedTools.empty())
    WantedTools = {"spirv-fuzz", "glsl-fuzz"};

  std::vector<const Target *> Targets;
  for (const Target &T : AllTargets)
    if (std::find(WantedTargets.begin(), WantedTargets.end(), T.name()) !=
        WantedTargets.end())
      Targets.push_back(&T);

  for (const ToolConfig &Tool : AllTools) {
    if (std::find(WantedTools.begin(), WantedTools.end(), Tool.Name) ==
        WantedTools.end())
      continue;
    size_t ReductionsDone = 0;
    // (target, signature) -> count, for the per-signature cap.
    std::map<std::pair<std::string, std::string>, size_t> SignatureCounts;
    CampaignProgress Progress("reduction/" + Tool.Name,
                              Config.MaxReductionsPerTool,
                              /*ReportEvery=*/10);

    for (size_t TestIndex = 0;
         TestIndex < Config.TestsPerTool &&
         ReductionsDone < Config.MaxReductionsPerTool;
         ++TestIndex) {
      size_t ReferenceIndex = 0;
      FuzzResult Fuzzed =
          regenerateTest(C, Tool, Config.Seed, TestIndex, ReferenceIndex);
      const GeneratedProgram &Reference = C.References[ReferenceIndex];

      for (const Target *T : Targets) {
        if (ReductionsDone >= Config.MaxReductionsPerTool)
          break;
        TargetRun Run = T->run(Fuzzed.Variant, Reference.Input);
        std::string Signature;
        if (Run.RunKind == TargetRun::Kind::Crash) {
          Signature = Run.Signature;
        } else if (T->canExecute() && !Config.CrashesOnly) {
          TargetRun OriginalRun = T->run(Reference.M, Reference.Input);
          if (OriginalRun.RunKind == TargetRun::Kind::Executed &&
              Run.Result != OriginalRun.Result)
            Signature = MiscompilationSignature;
        }
        if (Signature.empty())
          continue;
        auto Key = std::make_pair(T->name(), Signature);
        if (SignatureCounts[Key] >= Config.CapPerSignature)
          continue;
        ++SignatureCounts[Key];

        InterestingnessTest Test = makeInterestingnessTest(
            *T, Signature, Reference.M, Reference.Input);
        ReduceResult Reduced =
            Tool.Name == "glsl-fuzz"
                ? reduceByGroups(Reference.M, Reference.Input, Fuzzed.Sequence,
                                 Fuzzed.PassGroups, Test)
                : reduceSequence(Reference.M, Reference.Input, Fuzzed.Sequence,
                                 Test);
        if (Tool.Name != "glsl-fuzz") {
          // The ğ3.4 spirv-reduce step: shrink any surviving AddFunction
          // payloads.
          bool HasAddFunction = false;
          for (const TransformationPtr &T : Reduced.Minimized)
            if (T->kind() == TransformationKind::AddFunction)
              HasAddFunction = true;
          if (HasAddFunction) {
            size_t PriorChecks = Reduced.Checks;
            Reduced = shrinkAddFunctions(Reference.M, Reference.Input,
                                         Reduced.Minimized, Test);
            Reduced.Checks += PriorChecks;
          }
        }

        ReductionRecord Record;
        Record.Tool = Tool.Name;
        Record.TargetName = T->name();
        Record.Signature = Signature;
        Record.TestIndex = TestIndex;
        Record.OriginalCount = Reference.M.instructionCount();
        Record.UnreducedCount = Fuzzed.Variant.instructionCount();
        Record.ReducedCount = Reduced.ReducedVariant.instructionCount();
        Record.MinimizedLength = Reduced.Minimized.size();
        Record.Checks = Reduced.Checks;
        Record.Types = dedupTypesOf(Reduced.Minimized);
        Data.Records.push_back(std::move(Record));
        ++ReductionsDone;
        Progress.recordSignature(T->name(), Signature);
        Progress.advance();
        telemetry::MetricsRegistry::global().add("campaign.reductions");
      }
    }
  }
  return Data;
}

//===----------------------------------------------------------------------===//
// Table 4 (RQ3)
//===----------------------------------------------------------------------===//

DedupData spvfuzz::runDedup(const ReductionConfig &ConfigIn) {
  ReductionConfig Config = ConfigIn;
  Config.CrashesOnly = true; // ğ4.3: crash bugs give reliable ground truth
  Config.ToolNames = {"spirv-fuzz"};
  if (Config.TargetNames.empty()) {
    // All targets except NVIDIA (which was excluded in the paper because
    // of driver-induced machine freezes).
    for (const Target &T : standardTargets())
      if (T.name() != "NVIDIA")
        Config.TargetNames.push_back(T.name());
  }

  ReductionData Reductions = runReductions(Config);

  DedupData Data;
  Data.Total.TargetName = "Total";
  std::set<std::string> TotalSigs, TotalDistinct;
  CampaignProgress Progress("dedup", Config.TargetNames.size(),
                            /*ReportEvery=*/1);

  for (const std::string &TargetName : Config.TargetNames) {
    // Gather this target's reduced tests in order.
    std::vector<const ReductionRecord *> Tests;
    for (const ReductionRecord &Record : Reductions.Records)
      if (Record.TargetName == TargetName)
        Tests.push_back(&Record);
    if (Tests.empty())
      continue;

    std::vector<std::set<TransformationKind>> TestTypes;
    std::set<std::string> Sigs;
    for (const ReductionRecord *Record : Tests) {
      TestTypes.push_back(Record->Types);
      Sigs.insert(Record->Signature);
    }
    std::vector<size_t> Chosen = deduplicateTests(TestTypes);
    std::set<std::string> Covered;
    for (size_t Index : Chosen)
      Covered.insert(Tests[Index]->Signature);

    DedupTargetResult Result;
    Result.TargetName = TargetName;
    Result.Tests = Tests.size();
    Result.Sigs = Sigs.size();
    Result.Reports = Chosen.size();
    Result.Distinct = Covered.size();
    Result.Dups = Result.Reports - Result.Distinct;
    Data.PerTarget.push_back(Result);

    Data.Total.Tests += Result.Tests;
    Data.Total.Reports += Result.Reports;
    Data.Total.Dups += Result.Dups;
    Data.Total.Distinct += Result.Distinct;
    for (const std::string &Sig : Sigs)
      TotalSigs.insert(TargetName + ":" + Sig);
    Progress.recordClasses(Data.Total.Distinct);
    Progress.advance();
  }
  Data.Total.Sigs = TotalSigs.size();
  return Data;
}
