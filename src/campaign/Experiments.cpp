//===- campaign/Experiments.cpp - Drivers for the paper's experiments ------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "campaign/Experiments.h"

#include <algorithm>
#include <cstdlib>

using namespace spvfuzz;

size_t spvfuzz::envSize(const char *Name, size_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  char *End = nullptr;
  unsigned long long Parsed = strtoull(Value, &End, 10);
  if (End == Value || Parsed == 0)
    return Default;
  return static_cast<size_t>(Parsed);
}

//===----------------------------------------------------------------------===//
// Table 3 + Figure 7
//===----------------------------------------------------------------------===//

ToolTargetStats BugFindingData::allTargets(const std::string &Tool) const {
  ToolTargetStats All;
  All.PerGroup.resize(Config.NumGroups);
  auto ToolIt = Stats.find(Tool);
  if (ToolIt == Stats.end())
    return All;
  for (const auto &[TargetName, TargetStats] : ToolIt->second) {
    for (const std::string &Sig : TargetStats.Distinct)
      All.Distinct.insert(TargetName + ":" + Sig);
    for (size_t G = 0; G < TargetStats.PerGroup.size() &&
                       G < All.PerGroup.size();
         ++G)
      for (const std::string &Sig : TargetStats.PerGroup[G])
        All.PerGroup[G].insert(TargetName + ":" + Sig);
  }
  return All;
}

VennCounts spvfuzz::vennForTarget(const BugFindingData &Data,
                                  const std::string &TargetName) {
  auto SetFor = [&](const std::string &Tool) -> std::set<std::string> {
    if (TargetName == "All")
      return Data.allTargets(Tool).Distinct;
    auto ToolIt = Data.Stats.find(Tool);
    if (ToolIt == Data.Stats.end())
      return {};
    auto TargetIt = ToolIt->second.find(TargetName);
    if (TargetIt == ToolIt->second.end())
      return {};
    return TargetIt->second.Distinct;
  };
  std::set<std::string> A = SetFor("spirv-fuzz");
  std::set<std::string> B = SetFor("spirv-fuzz-simple");
  std::set<std::string> C = SetFor("glsl-fuzz");

  std::set<std::string> Union;
  Union.insert(A.begin(), A.end());
  Union.insert(B.begin(), B.end());
  Union.insert(C.begin(), C.end());

  VennCounts Counts;
  for (const std::string &Sig : Union) {
    bool InA = A.count(Sig), InB = B.count(Sig), InC = C.count(Sig);
    if (InA && InB && InC)
      ++Counts.ABC;
    else if (InA && InB)
      ++Counts.AB;
    else if (InA && InC)
      ++Counts.AC;
    else if (InB && InC)
      ++Counts.BC;
    else if (InA)
      ++Counts.OnlyA;
    else if (InB)
      ++Counts.OnlyB;
    else
      ++Counts.OnlyC;
  }
  return Counts;
}

//===----------------------------------------------------------------------===//
// Reductions (RQ2)
//===----------------------------------------------------------------------===//

std::vector<ReductionRecord>
ReductionData::forTool(const std::string &Tool) const {
  std::vector<ReductionRecord> Out;
  for (const ReductionRecord &Record : Records)
    if (Record.Tool == Tool)
      Out.push_back(Record);
  return Out;
}

double
ReductionData::medianDelta(const std::vector<ReductionRecord> &Records) {
  std::vector<double> Deltas;
  for (const ReductionRecord &Record : Records)
    Deltas.push_back(static_cast<double>(Record.delta()));
  return median(std::move(Deltas));
}

double ReductionData::medianUnreducedDelta(
    const std::vector<ReductionRecord> &Records) {
  std::vector<double> Deltas;
  for (const ReductionRecord &Record : Records)
    Deltas.push_back(static_cast<double>(Record.unreducedDelta()));
  return median(std::move(Deltas));
}
