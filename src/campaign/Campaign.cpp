//===- campaign/Campaign.cpp - Testing campaign harness --------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"

#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>

using namespace spvfuzz;

Corpus spvfuzz::makeCorpus(const CorpusSpec &Spec) {
  uint64_t Seed = Spec.Seed.value_or(2021);
  Corpus C;
  C.References = generateCorpus(Spec.NumReferences, Seed);
  C.DonorPrograms = generateCorpus(Spec.NumDonors, Seed + 0x9e3779b9ULL);
  for (const GeneratedProgram &Donor : C.DonorPrograms)
    C.Donors.push_back(&Donor.M);
  return C;
}

std::vector<ToolConfig> spvfuzz::standardTools(const ToolsetSpec &Spec) {
  FuzzerOptions Full;
  Full.TransformationLimit = Spec.TransformationLimit.value_or(300);
  Full.Profile = FuzzerProfile::Full;
  Full.EnableRecommendations = true;

  FuzzerOptions Simple = Full;
  Simple.EnableRecommendations = false;

  FuzzerOptions Baseline = Full;
  Baseline.Profile = FuzzerProfile::Baseline;
  Baseline.EnableRecommendations = false;

  // Seed streams are fixed by canonical position so that filtering the tool
  // list does not change any surviving tool's per-test seed sequence.
  std::vector<ToolConfig> All = {{"spirv-fuzz", Full, 0},
                                 {"spirv-fuzz-simple", Simple, 1},
                                 {"glsl-fuzz", Baseline, 2}};
  if (Spec.Names.empty())
    return All;
  std::vector<ToolConfig> Filtered;
  for (const ToolConfig &Tool : All)
    for (const std::string &Name : Spec.Names)
      if (Tool.Name == Name) {
        Filtered.push_back(Tool);
        break;
      }
  return Filtered;
}

static uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t spvfuzz::testSeed(uint64_t CampaignSeed, uint32_t SeedStream,
                           size_t TestIndex) {
  uint64_t X = splitmix64(CampaignSeed);
  X = splitmix64(X ^ SeedStream);
  return splitmix64(X ^ static_cast<uint64_t>(TestIndex));
}

/// Rewrites every scalar leaf of \p V from a splitmix chain threaded
/// through \p State; composites recurse, so the leaf position orders the
/// chain deterministically. Booleans stay 0/1.
static void perturbValue(Value &V, uint64_t &State) {
  switch (V.ValueKind) {
  case Value::Kind::Int:
    State = splitmix64(State);
    V.Scalar = static_cast<int32_t>(State);
    break;
  case Value::Kind::Bool:
    State = splitmix64(State);
    V.Scalar = static_cast<int32_t>((State >> 32) & 1);
    break;
  case Value::Kind::Composite:
    for (Value &Elem : V.Elements)
      perturbValue(Elem, State);
    break;
  case Value::Kind::Pointer:
    break; // pointers never appear in shader inputs
  }
}

std::vector<ShaderInput> spvfuzz::uniformInputMatrix(const ShaderInput &Base,
                                                     size_t Count,
                                                     uint64_t Seed) {
  std::vector<ShaderInput> Matrix;
  Matrix.reserve(std::max<size_t>(Count, 1));
  Matrix.push_back(Base);
  for (size_t K = 1; K < Count; ++K) {
    ShaderInput Input = Base;
    for (auto &[Binding, V] : Input.Bindings) {
      uint64_t State = splitmix64(Seed ^ 0x756e69666f726dULL); // "uniform"
      State = splitmix64(State ^ static_cast<uint64_t>(K));
      State = splitmix64(State ^ Binding);
      perturbValue(V, State);
    }
    Matrix.push_back(std::move(Input));
  }
  return Matrix;
}

FuzzResult spvfuzz::regenerateTest(const Corpus &C, const ToolConfig &Tool,
                                   uint64_t CampaignSeed, size_t TestIndex,
                                   size_t &ReferenceIndexOut) {
  ReferenceIndexOut = TestIndex % C.References.size();
  const GeneratedProgram &Reference = C.References[ReferenceIndexOut];
  return fuzz(Reference.M, Reference.Input, C.Donors,
              testSeed(CampaignSeed, Tool.SeedStream, TestIndex),
              Tool.Options);
}

TestEvaluation spvfuzz::evaluateTest(const Corpus &C, const ToolConfig &Tool,
                                     const std::vector<const Target *> &Targets,
                                     uint64_t CampaignSeed, size_t TestIndex,
                                     bool CrashesOnly) {
  return evaluateTestOn(C, Tool, Targets, CampaignSeed, TestIndex,
                        CrashesOnly);
}

TestEvaluation spvfuzz::evaluateTest(const Corpus &C, const ToolConfig &Tool,
                                     const std::vector<Target> &Targets,
                                     uint64_t CampaignSeed, size_t TestIndex) {
  std::vector<const Target *> Pointers;
  Pointers.reserve(Targets.size());
  for (const Target &T : Targets)
    Pointers.push_back(&T);
  return evaluateTest(C, Tool, Pointers, CampaignSeed, TestIndex,
                      /*CrashesOnly=*/false);
}

InterestingnessTest
spvfuzz::makeInterestingnessTest(const Target &T, const std::string &Signature,
                                 const Module &Original,
                                 const ShaderInput &Input) {
  return makeInterestingnessTestFor(T, Signature, Original, Input);
}

//===----------------------------------------------------------------------===//
// CampaignProgress
//===----------------------------------------------------------------------===//

CampaignProgress::CampaignProgress(std::string Phase, size_t TotalUnits,
                                   size_t ReportEvery)
    : Phase(std::move(Phase)), TotalUnits(TotalUnits),
      ReportEvery(ReportEvery ? ReportEvery : 1),
      Active(telemetry::MetricsRegistry::global().enabled()),
      Start(std::chrono::steady_clock::now()) {}

CampaignProgress::~CampaignProgress() {
  if (Active && Units > 0)
    report(/*Final=*/true);
}

void CampaignProgress::advance() {
  if (!Active)
    return;
  ++Units;
  if (Units % ReportEvery == 0)
    report(/*Final=*/false);
}

void CampaignProgress::recordSignature(const std::string &TargetName,
                                       const std::string &Signature) {
  if (!Active)
    return;
  ++Bugs;
  ++BugsPerTarget[TargetName];
  telemetry::Tracer::global().event(
      "campaign.bug",
      {{"phase", Phase}, {"target", TargetName}, {"signature", Signature}});
}

void CampaignProgress::recordClasses(size_t NumClasses) {
  if (!Active)
    return;
  Classes = NumClasses;
  telemetry::MetricsRegistry::global().set("campaign.dedup_classes",
                                           static_cast<double>(NumClasses));
}

void CampaignProgress::report(bool Final) {
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  double PerSec = Seconds > 0.0 ? static_cast<double>(Units) / Seconds : 0.0;
  telemetry::MetricsRegistry::global().set("campaign.units_per_sec." + Phase,
                                           PerSec);

  std::string BugSummary;
  for (const auto &[TargetName, Count] : BugsPerTarget)
    BugSummary += " " + TargetName + "=" + std::to_string(Count);
  if (BugSummary.empty())
    BugSummary = " none";
  std::fprintf(stderr, "[%s] %zu/%zu units (%.1f/s)%s bugs:%s%s\n",
               Phase.c_str(), Units, TotalUnits, PerSec,
               Final ? " [done]" : "", BugSummary.c_str(),
               Classes ? (" classes=" + std::to_string(Classes)).c_str()
                       : "");
}
