//===- campaign/Campaign.cpp - Testing campaign harness --------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"

#include "support/Telemetry.h"
#include "support/Trace.h"

#include <cstdio>

using namespace spvfuzz;

Corpus spvfuzz::makeCorpus(uint64_t Seed, size_t NumReferences,
                           size_t NumDonors) {
  Corpus C;
  C.References = generateCorpus(NumReferences, Seed);
  C.DonorPrograms = generateCorpus(NumDonors, Seed + 0x9e3779b9ULL);
  for (const GeneratedProgram &Donor : C.DonorPrograms)
    C.Donors.push_back(&Donor.M);
  return C;
}

std::vector<ToolConfig>
spvfuzz::standardTools(uint32_t TransformationLimit) {
  FuzzerOptions Full;
  Full.TransformationLimit = TransformationLimit;
  Full.Profile = FuzzerProfile::Full;
  Full.EnableRecommendations = true;

  FuzzerOptions Simple = Full;
  Simple.EnableRecommendations = false;

  FuzzerOptions Baseline = Full;
  Baseline.Profile = FuzzerProfile::Baseline;
  Baseline.EnableRecommendations = false;

  return {{"spirv-fuzz", Full},
          {"spirv-fuzz-simple", Simple},
          {"glsl-fuzz", Baseline}};
}

uint64_t spvfuzz::testSeed(uint64_t CampaignSeed, size_t TestIndex) {
  return CampaignSeed * 0x100000001b3ULL + TestIndex * 2654435761ULL + 17;
}

FuzzResult spvfuzz::regenerateTest(const Corpus &C, const ToolConfig &Tool,
                                   uint64_t CampaignSeed, size_t TestIndex,
                                   size_t &ReferenceIndexOut) {
  ReferenceIndexOut = TestIndex % C.References.size();
  const GeneratedProgram &Reference = C.References[ReferenceIndexOut];
  return fuzz(Reference.M, Reference.Input, C.Donors,
              testSeed(CampaignSeed, TestIndex), Tool.Options);
}

TestEvaluation spvfuzz::evaluateTest(const Corpus &C, const ToolConfig &Tool,
                                     const std::vector<Target> &Targets,
                                     uint64_t CampaignSeed,
                                     size_t TestIndex) {
  TestEvaluation Eval;
  Eval.Seed = testSeed(CampaignSeed, TestIndex);
  FuzzResult Fuzzed =
      regenerateTest(C, Tool, CampaignSeed, TestIndex, Eval.ReferenceIndex);
  const GeneratedProgram &Reference = C.References[Eval.ReferenceIndex];

  for (const Target &T : Targets) {
    TargetRun VariantRun = T.run(Fuzzed.Variant, Reference.Input);
    if (VariantRun.RunKind == TargetRun::Kind::Crash) {
      Eval.Signatures[T.name()] = VariantRun.Signature;
      continue;
    }
    if (!T.canExecute())
      continue;
    // Differential check (Theorem 2.6): the variant's result through the
    // implementation must match the original's result through the same
    // implementation.
    TargetRun OriginalRun = T.run(Reference.M, Reference.Input);
    if (OriginalRun.RunKind != TargetRun::Kind::Executed)
      continue; // the target cannot even handle the original; skip
    if (VariantRun.Result != OriginalRun.Result)
      Eval.Signatures[T.name()] = MiscompilationSignature;
  }

  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("campaign.tests");
    for (const auto &[TargetName, Signature] : Eval.Signatures)
      Metrics.add("campaign.bugs." + TargetName);
  }
  if (telemetry::Tracer::global().enabled()) {
    telemetry::Tracer::global().event(
        "campaign.test", {{"tool", Tool.Name},
                          {"index", TestIndex},
                          {"sequence_length", Fuzzed.Sequence.size()},
                          {"bugs", Eval.Signatures.size()}});
  }
  return Eval;
}

InterestingnessTest
spvfuzz::makeInterestingnessTest(const Target &T, const std::string &Signature,
                                 const Module &Original,
                                 const ShaderInput &Input) {
  if (Signature != MiscompilationSignature) {
    // Crash: the candidate must reproduce this exact signature (ğ3.4).
    return [&T, Signature, Input](const Module &Variant, const FactManager &) {
      TargetRun Run = T.run(Variant, Input);
      return Run.RunKind == TargetRun::Kind::Crash &&
             Run.Signature == Signature;
    };
  }
  // Miscompilation: compare the images rendered via the variant and the
  // original (ğ3.4), i.e. the executed results through the target.
  TargetRun OriginalRun = T.run(Original, Input);
  ExecResult Baseline = OriginalRun.Result;
  return [&T, Baseline, Input](const Module &Variant, const FactManager &) {
    TargetRun Run = T.run(Variant, Input);
    return Run.RunKind == TargetRun::Kind::Executed &&
           Run.Result != Baseline;
  };
}

//===----------------------------------------------------------------------===//
// CampaignProgress
//===----------------------------------------------------------------------===//

CampaignProgress::CampaignProgress(std::string Phase, size_t TotalUnits,
                                   size_t ReportEvery)
    : Phase(std::move(Phase)), TotalUnits(TotalUnits),
      ReportEvery(ReportEvery ? ReportEvery : 1),
      Active(telemetry::MetricsRegistry::global().enabled()),
      Start(std::chrono::steady_clock::now()) {}

CampaignProgress::~CampaignProgress() {
  if (Active && Units > 0)
    report(/*Final=*/true);
}

void CampaignProgress::advance() {
  if (!Active)
    return;
  ++Units;
  if (Units % ReportEvery == 0)
    report(/*Final=*/false);
}

void CampaignProgress::recordSignature(const std::string &TargetName,
                                       const std::string &Signature) {
  if (!Active)
    return;
  ++Bugs;
  ++BugsPerTarget[TargetName];
  telemetry::Tracer::global().event(
      "campaign.bug",
      {{"phase", Phase}, {"target", TargetName}, {"signature", Signature}});
}

void CampaignProgress::recordClasses(size_t NumClasses) {
  if (!Active)
    return;
  Classes = NumClasses;
  telemetry::MetricsRegistry::global().set("campaign.dedup_classes",
                                           static_cast<double>(NumClasses));
}

void CampaignProgress::report(bool Final) {
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  double PerSec = Seconds > 0.0 ? static_cast<double>(Units) / Seconds : 0.0;
  telemetry::MetricsRegistry::global().set("campaign.units_per_sec." + Phase,
                                           PerSec);

  std::string BugSummary;
  for (const auto &[TargetName, Count] : BugsPerTarget)
    BugSummary += " " + TargetName + "=" + std::to_string(Count);
  if (BugSummary.empty())
    BugSummary = " none";
  std::fprintf(stderr, "[%s] %zu/%zu units (%.1f/s)%s bugs:%s%s\n",
               Phase.c_str(), Units, TotalUnits, PerSec,
               Final ? " [done]" : "", BugSummary.c_str(),
               Classes ? (" classes=" + std::to_string(Classes)).c_str()
                       : "");
}
