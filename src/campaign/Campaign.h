//===- campaign/Campaign.h - Testing campaign harness -----------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gfauto analogue: runs fuzzing tools over a reference corpus,
/// evaluates each generated test on every target (crash signatures and
/// miscompilation detection via Theorem 2.6's differential check), and
/// drives reductions with the appropriate interestingness tests.
///
//===----------------------------------------------------------------------===//

#ifndef CAMPAIGN_CAMPAIGN_H
#define CAMPAIGN_CAMPAIGN_H

#include "core/Fuzzer.h"
#include "core/Reducer.h"
#include "gen/Generator.h"
#include "support/Telemetry.h"
#include "support/Trace.h"
#include "target/Target.h"

#include <chrono>
#include <map>
#include <optional>

namespace spvfuzz {

/// The shared signature all miscompilations contribute (ğ4.1: "all
/// miscompilations contribute the same bug signature").
inline constexpr const char *MiscompilationSignature = "<miscompilation>";

/// Reference and donor corpora (the GraphicsFuzz shader sets).
struct Corpus {
  std::vector<GeneratedProgram> References;
  std::vector<GeneratedProgram> DonorPrograms;
  std::vector<const Module *> Donors;
};

/// Builder for a corpus. Defaults are the paper's counts (21 references,
/// 43 donors); an unset Seed is filled in by the consumer (CampaignEngine
/// uses its ExecutionPolicy seed; bare makeCorpus falls back to 2021).
struct CorpusSpec {
  std::optional<uint64_t> Seed;
  size_t NumReferences = 21;
  size_t NumDonors = 43;

  CorpusSpec &withSeed(uint64_t Value) {
    Seed = Value;
    return *this;
  }
  CorpusSpec &withReferences(size_t Count) {
    NumReferences = Count;
    return *this;
  }
  CorpusSpec &withDonors(size_t Count) {
    NumDonors = Count;
    return *this;
  }
};

/// Builds the corpus described by \p Spec.
Corpus makeCorpus(const CorpusSpec &Spec);

/// One tool configuration of the evaluation. SeedStream gives each tool an
/// independent per-test seed sequence (see testSeed); standardTools assigns
/// stable streams so a tool's tests do not depend on which other tools run.
struct ToolConfig {
  std::string Name;
  FuzzerOptions Options;
  uint32_t SeedStream = 0;
};

/// Builder for the tool list. Defaults to the three configurations of
/// Table 3 — spirv-fuzz, spirv-fuzz-simple (recommendations disabled) and
/// glsl-fuzz (the baseline profile). An unset TransformationLimit is filled
/// in by the consumer (CampaignEngine uses its ExecutionPolicy limit; bare
/// standardTools falls back to 300).
struct ToolsetSpec {
  std::optional<uint32_t> TransformationLimit;
  /// Restrict to these tool names; empty keeps all three.
  std::vector<std::string> Names;

  ToolsetSpec &withTransformationLimit(uint32_t Limit) {
    TransformationLimit = Limit;
    return *this;
  }
  ToolsetSpec &withTool(std::string Name) {
    Names.push_back(std::move(Name));
    return *this;
  }
};

/// Builds the tool list described by \p Spec.
std::vector<ToolConfig> standardTools(const ToolsetSpec &Spec);

/// One generated test evaluated against the full target set.
struct TestEvaluation {
  uint64_t Seed = 0;
  size_t ReferenceIndex = 0;
  /// target name -> signature; absent if the test did not expose a bug on
  /// that target.
  std::map<std::string, std::string> Signatures;
  /// Target names whose run ended in a hard tool error (infrastructure
  /// noise, never a bug report) — the circuit breaker's food, in target
  /// order.
  std::vector<std::string> ToolErrored;
};

/// Re-runs the fuzzer deterministically to recover the transformation
/// sequence behind a test (used when a bug was found and reduction is
/// wanted).
FuzzResult regenerateTest(const Corpus &C, const ToolConfig &Tool,
                          uint64_t CampaignSeed, size_t TestIndex,
                          size_t &ReferenceIndexOut);

/// Derives the deterministic per-test fuzzer seed: a splitmix64 chain over
/// (CampaignSeed, SeedStream, TestIndex). Each (seed, stream) pair yields an
/// independent sequence, so every tool can own its own stream and per-test
/// jobs can be scheduled in any order without seed collisions.
uint64_t testSeed(uint64_t CampaignSeed, uint32_t SeedStream,
                  size_t TestIndex);

/// Derives a deterministic matrix of \p Count uniform inputs from \p Base:
/// element 0 is \p Base itself, later elements perturb every integer and
/// boolean leaf by a seeded mix over (Seed, element index, binding, leaf
/// position). One compiled artifact evaluated over the whole matrix is the
/// batched variant of the paper's differential check — more inputs, same
/// compile.
std::vector<ShaderInput> uniformInputMatrix(const ShaderInput &Base,
                                            size_t Count, uint64_t Seed);

/// Generates test number \p TestIndex for \p Tool (deterministic in
/// (\p CampaignSeed, \p Tool.SeedStream, \p TestIndex)) and evaluates it on
/// all \p Targets. With \p CrashesOnly, the differential (miscompilation)
/// check is skipped and only interesting signatures are recorded.
/// Templated over the target type so harnessed/cached wrappers fit; any
/// TargetT whose run(Module, ShaderInput) returns a TargetRun (and whose
/// runBatch(Module, span) returns one TargetRun per input) works.
///
/// With \p UniformInputs > 1 each target evaluates the whole
/// uniformInputMatrix(Reference.Input, UniformInputs, MatrixSeed) through
/// runBatch — one compile, many executions. The per-input decision ladder
/// is identical to the single-input path, applied in input order; the
/// first input producing a verdict (tool error or interesting signature,
/// then first differential mismatch) decides the target's entry.
template <typename TargetT>
TestEvaluation evaluateTestOn(const Corpus &C, const ToolConfig &Tool,
                              const std::vector<const TargetT *> &Targets,
                              uint64_t CampaignSeed, size_t TestIndex,
                              bool CrashesOnly = false,
                              size_t UniformInputs = 1,
                              uint64_t MatrixSeed = 0) {
  TestEvaluation Eval;
  Eval.Seed = testSeed(CampaignSeed, Tool.SeedStream, TestIndex);
  FuzzResult Fuzzed =
      regenerateTest(C, Tool, CampaignSeed, TestIndex, Eval.ReferenceIndex);
  const GeneratedProgram &Reference = C.References[Eval.ReferenceIndex];

  if (UniformInputs <= 1) {
    for (const TargetT *TP : Targets) {
      const TargetT &T = *TP;
      TargetRun VariantRun = T.run(Fuzzed.Variant, Reference.Input);
      if (VariantRun.RunOutcome == Outcome::ToolError) {
        Eval.ToolErrored.push_back(T.name());
        continue;
      }
      if (VariantRun.interesting()) {
        Eval.Signatures[T.name()] = VariantRun.Signature;
        continue;
      }
      if (CrashesOnly || !T.canExecute())
        continue;
      // Differential check (Theorem 2.6): the variant's result through the
      // implementation must match the original's result through the same
      // implementation.
      TargetRun OriginalRun = T.run(Reference.M, Reference.Input);
      if (!OriginalRun.executed())
        continue; // the target cannot even handle the original; skip
      if (VariantRun.Result != OriginalRun.Result)
        Eval.Signatures[T.name()] = MiscompilationSignature;
    }
  } else {
    const std::vector<ShaderInput> Matrix =
        uniformInputMatrix(Reference.Input, UniformInputs, MatrixSeed);
    for (const TargetT *TP : Targets) {
      const TargetT &T = *TP;
      std::vector<TargetRun> VariantRuns = T.runBatch(Fuzzed.Variant, Matrix);
      bool Decided = false;
      for (const TargetRun &R : VariantRuns) {
        if (R.RunOutcome == Outcome::ToolError) {
          Eval.ToolErrored.push_back(T.name());
          Decided = true;
          break;
        }
        if (R.interesting()) {
          Eval.Signatures[T.name()] = R.Signature;
          Decided = true;
          break;
        }
      }
      if (Decided || CrashesOnly || !T.canExecute())
        continue;
      std::vector<TargetRun> OriginalRuns = T.runBatch(Reference.M, Matrix);
      for (size_t K = 0; K < Matrix.size(); ++K) {
        if (!VariantRuns[K].executed() || !OriginalRuns[K].executed())
          continue;
        if (VariantRuns[K].Result != OriginalRuns[K].Result) {
          Eval.Signatures[T.name()] = MiscompilationSignature;
          break;
        }
      }
    }
  }

  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled()) {
    Metrics.add("campaign.tests");
    for (const auto &[TargetName, Signature] : Eval.Signatures)
      Metrics.add("campaign.bugs." + TargetName);
  }
  if (telemetry::Tracer::global().enabled()) {
    telemetry::Tracer::global().event(
        "campaign.test", {{"tool", Tool.Name},
                          {"index", TestIndex},
                          {"sequence_length", Fuzzed.Sequence.size()},
                          {"bugs", Eval.Signatures.size()}});
  }
  return Eval;
}

/// Non-template convenience over plain targets.
TestEvaluation evaluateTest(const Corpus &C, const ToolConfig &Tool,
                            const std::vector<const Target *> &Targets,
                            uint64_t CampaignSeed, size_t TestIndex,
                            bool CrashesOnly = false);

/// Convenience overload over a value vector of targets.
TestEvaluation evaluateTest(const Corpus &C, const ToolConfig &Tool,
                            const std::vector<Target> &Targets,
                            uint64_t CampaignSeed, size_t TestIndex);

/// Builds the interestingness test for a bug found on \p T: dispatches to
/// makeCrashInterestingness / makeMiscompilationInterestingness on whether
/// \p Signature is MiscompilationSignature. Templated so cache-aware
/// wrappers (target/EvalCache.h's CachedTarget) fit as well as plain
/// Targets; \p T is captured by pointer and must outlive the test.
template <typename TargetT>
InterestingnessTest
makeInterestingnessTestFor(const TargetT &T, const std::string &Signature,
                           const Module &Original, const ShaderInput &Input) {
  if (Signature != MiscompilationSignature)
    return makeCrashInterestingness(T, Signature, Input);
  return makeMiscompilationInterestingness(T, Original, Input);
}

InterestingnessTest
makeInterestingnessTest(const Target &T, const std::string &Signature,
                        const Module &Original, const ShaderInput &Input);

/// Campaign-level progress reporting: tracks throughput (units/sec), bugs
/// found per target and dedup-class growth, mirrors them into the metrics
/// registry (`campaign.*`) and prints periodic summaries to stderr. The
/// reporter is inert while the metrics registry is disabled, so unit tests
/// and benches stay quiet by default.
class CampaignProgress {
public:
  /// \p Phase names the campaign phase (e.g. "bug-finding/spirv-fuzz");
  /// \p TotalUnits is the expected unit count (0 if unknown) and
  /// \p ReportEvery the stderr reporting period in units.
  CampaignProgress(std::string Phase, size_t TotalUnits,
                   size_t ReportEvery = 25);
  CampaignProgress(const CampaignProgress &) = delete;
  CampaignProgress &operator=(const CampaignProgress &) = delete;
  /// Emits the final summary line.
  ~CampaignProgress();

  /// Records one completed unit (a generated test, a reduction, ...).
  void advance();

  /// Records a bug found on \p TargetName.
  void recordSignature(const std::string &TargetName,
                       const std::string &Signature);

  /// Records the current number of distinct deduplicated bug classes.
  void recordClasses(size_t NumClasses);

private:
  void report(bool Final);

  std::string Phase;
  size_t TotalUnits;
  size_t ReportEvery;
  size_t Units = 0;
  size_t Bugs = 0;
  size_t Classes = 0;
  bool Active;
  std::chrono::steady_clock::time_point Start;
  std::map<std::string, size_t> BugsPerTarget;
};

} // namespace spvfuzz

#endif // CAMPAIGN_CAMPAIGN_H
