//===- campaign/CampaignEngine.cpp - Parallel campaign engine --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "campaign/CampaignEngine.h"

#include "baseline/BaselineReducer.h"
#include "core/Reducer.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <optional>
#include <utility>

using namespace spvfuzz;

CampaignEngine::CampaignEngine(ExecutionPolicy PolicyIn, CorpusSpec CorpusOpts,
                               ToolsetSpec ToolOpts, TargetFleet FleetIn)
    : Policy(PolicyIn), Start(std::chrono::steady_clock::now()) {
  if (!CorpusOpts.Seed)
    CorpusOpts.Seed = Policy.Seed;
  if (!ToolOpts.TransformationLimit)
    ToolOpts.TransformationLimit = Policy.TransformationLimit;
  CorpusData = makeCorpus(CorpusOpts);
  Tools = standardTools(ToolOpts);
  Fleet = FleetIn.empty() ? TargetFleet::standard() : std::move(FleetIn);
  Eval = std::make_unique<EvalCache>(Policy.EvalCacheBudget);
  ExeC = std::make_unique<ExecutableCache>(Policy.ExecutableCacheBudget);
  HarnessPolicy HarnessOpts;
  HarnessOpts.CampaignSeed = Policy.Seed;
  HarnessOpts.TargetDeadlineSteps = Policy.TargetDeadlineSteps;
  HarnessOpts.FlakyRetries = Policy.FlakyRetries;
  HarnessOpts.QuarantineThreshold = Policy.QuarantineThreshold;
  HarnessOpts.Engine = Policy.Engine;
  Har = std::make_unique<Harness>(Fleet, HarnessOpts, Eval.get(), ExeC.get());
  if (Policy.Jobs != 1)
    Pool = std::make_unique<ThreadPool>(Policy.Jobs);
}

CampaignEngine::~CampaignEngine() = default;

const ToolConfig *CampaignEngine::findTool(const std::string &Name) const {
  for (const ToolConfig &Tool : Tools)
    if (Tool.Name == Name)
      return &Tool;
  return nullptr;
}

FuzzResult CampaignEngine::regenerate(const ToolConfig &Tool, size_t TestIndex,
                                      size_t &ReferenceIndexOut) const {
  return regenerateTest(CorpusData, Tool, Policy.Seed, TestIndex,
                        ReferenceIndexOut);
}

bool CampaignEngine::deadlineExpired() const {
  if (Policy.Deadline.count() <= 0)
    return false;
  return cancelled() ||
         std::chrono::steady_clock::now() - Start >= Policy.Deadline;
}

bool CampaignEngine::checkDeadline() {
  if (Policy.Deadline.count() <= 0)
    return false;
  if (cancelled())
    return true;
  if (std::chrono::steady_clock::now() - Start < Policy.Deadline)
    return false;
  CancelFlag.store(true, std::memory_order_relaxed);
  if (Pool)
    Pool->requestCancel();
  return true;
}

template <typename ResultT>
std::vector<ResultT>
CampaignEngine::runJobs(std::vector<std::function<ResultT()>> Jobs) {
  std::vector<ResultT> Results;
  Results.reserve(Jobs.size());
  if (!Pool) {
    for (std::function<ResultT()> &Job : Jobs)
      Results.push_back(Job());
    return Results;
  }
  std::vector<std::future<ResultT>> Futures;
  Futures.reserve(Jobs.size());
  for (std::function<ResultT()> &Job : Jobs)
    Futures.push_back(Pool->submit(std::move(Job)));
  for (std::future<ResultT> &Future : Futures)
    Results.push_back(Future.get());
  return Results;
}

std::vector<TestEvaluation>
CampaignEngine::evaluateTests(const ToolConfig &Tool, size_t Count,
                              bool CrashesOnly) {
  // The scan goes through the harness's *uncached* views: the bug-finding
  // counters must not depend on cross-thread cache interleaving.
  const std::vector<HarnessedTarget> &Scan = Har->uncached();

  std::vector<TestEvaluation> Evals;
  Evals.reserve(Count);

  // Resume: a checkpoint holds whole waves only, so restoring it and
  // continuing from NextWave retraces exactly the uninterrupted schedule.
  const std::string PhaseKey = "eval/" + Tool.Name + "/" +
                               std::to_string(Count) +
                               (CrashesOnly ? "/crashes" : "");
  size_t StartWave = 0;
  if (Checkpointer) {
    EvaluationCheckpoint Saved;
    if (Checkpointer->loadEvaluation(PhaseKey, Saved)) {
      Evals = std::move(Saved.Evals);
      Har->restoreBreakers(Saved.Breakers);
      if (Saved.Complete)
        return Evals;
      StartWave = Saved.NextWave;
    }
  }
  if (Observer)
    Observer->onPhaseStarted(PhaseKey, StartWave, Count);
  // Running bug-observation tally for WaveCommitted events, primed from the
  // restored prefix so resumed tallies match the uninterrupted run's.
  size_t BugsSoFar = 0;
  for (const TestEvaluation &Restored : Evals)
    BugsSoFar += Restored.Signatures.size();

  // The quarantine mask in provider terms: target *names* sidelined at the
  // current wave boundary, in fleet order. A remote worker rebuilds the
  // same fleet, so names are a complete, order-stable description of the
  // wave's target set.
  auto sidelinedNames = [&] {
    std::vector<std::string> Names;
    for (const HarnessedTarget &T : Scan)
      if (Har->quarantined(T.name()))
        Names.push_back(T.name());
    return Names;
  };
  if (Provider) {
    ShardRequest Prototype;
    Prototype.Phase = PhaseKey;
    Prototype.Tool = Tool.Name;
    Prototype.Count = Count;
    Prototype.CrashesOnly = CrashesOnly;
    Prototype.Sidelined = sidelinedNames();
    Provider->beginPhase(Prototype, StartWave);
  }

  telemetry::TracePhaseScope EvalPhase("fuzz");
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();

  size_t WavesSinceSave = 0;
  bool Interrupted = false;
  for (size_t WaveStart = StartWave; WaveStart < Count;
       WaveStart += ShardSize) {
    if (checkDeadline()) {
      Interrupted = true;
      break;
    }
    size_t WaveEnd = std::min(Count, WaveStart + ShardSize);

    telemetry::TraceSpan WaveSpan("campaign.wave");
    const uint64_t WaveId = WaveSpan.id();
    uint64_t StepsBefore = 0;
    if (WaveSpan.active()) {
      WaveSpan.note({"phase_key", PhaseKey});
      WaveSpan.note({"wave", WaveEnd});
      if (Metrics.enabled())
        StepsBefore = Metrics.counterValue("exec.steps");
    }

    // Quarantine snapshot: targets sidelined by earlier waves stay out of
    // this whole wave. Taken serially between waves, so it is identical at
    // any job count.
    std::vector<const HarnessedTarget *> WaveTargets;
    WaveTargets.reserve(Scan.size());
    for (const HarnessedTarget &T : Scan)
      if (!Har->quarantined(T.name()))
        WaveTargets.push_back(&T);

    // With a provider attached, the wave's computation (and only the
    // computation — the serial fold below is shared) is sourced from it;
    // a declined shard falls back to the local pool.
    bool FromProvider = false;
    std::vector<std::optional<TestEvaluation>> Results;
    if (Provider) {
      ShardRequest Request;
      Request.Phase = PhaseKey;
      Request.Tool = Tool.Name;
      Request.Count = Count;
      Request.CrashesOnly = CrashesOnly;
      Request.WaveStart = WaveStart;
      Request.WaveEnd = WaveEnd;
      Request.Sidelined = sidelinedNames();
      std::vector<TestEvaluation> Provided;
      if (Provider->takeShard(Request, Provided)) {
        FromProvider = true;
        Results.reserve(Provided.size());
        for (TestEvaluation &Eval : Provided)
          Results.emplace_back(std::move(Eval));
      }
    }
    if (!FromProvider) {
      std::vector<std::function<std::optional<TestEvaluation>()>> Jobs;
      Jobs.reserve(WaveEnd - WaveStart);
      for (size_t Index = WaveStart; Index < WaveEnd; ++Index)
        Jobs.push_back(
            [this, &Tool, &WaveTargets, Index, CrashesOnly,
             WaveId]() -> std::optional<TestEvaluation> {
              if (cancelled())
                return std::nullopt;
              telemetry::TracePhaseScope JobPhase("fuzz");
              telemetry::TraceSpan JobSpan("campaign.evaluate", WaveId);
              JobSpan.note({"test", Index});
              return evaluateTestOn(CorpusData, Tool, WaveTargets, Policy.Seed,
                                    Index, CrashesOnly, Policy.UniformInputs,
                                    Policy.Seed);
            });
      Results = runJobs(std::move(Jobs));
    }
    bool Truncated = false;
    for (size_t Offset = 0; Offset < Results.size(); ++Offset) {
      std::optional<TestEvaluation> &Result = Results[Offset];
      if (!Result) {
        Truncated = true;
        break;
      }
      // Serial breaker commit, in test-index and target order: hard tool
      // errors advance a target's consecutive-failure count, anything else
      // resets it.
      for (const HarnessedTarget *T : WaveTargets) {
        bool HardError =
            std::find(Result->ToolErrored.begin(), Result->ToolErrored.end(),
                      T->name()) != Result->ToolErrored.end();
        if (Har->recordOutcome(T->name(), HardError) && Observer)
          Observer->onTargetQuarantined(PhaseKey, WaveEnd, T->name());
      }
      if (Observer)
        for (const auto &[TargetName, Signature] : Result->Signatures)
          Observer->onBugFound(PhaseKey, WaveEnd, WaveStart + Offset,
                               TargetName, Signature);
      BugsSoFar += Result->Signatures.size();
      Evals.push_back(std::move(*Result));
    }
    if (Truncated) {
      // The wave was cut short mid-commit: its partial results (and their
      // breaker commits) are NOT checkpointed — the last saved checkpoint
      // still describes a state the uninterrupted run passed through, and
      // resume recomputes this wave whole.
      Interrupted = true;
      break;
    }
    if (WaveSpan.active() && Metrics.enabled())
      WaveSpan.note({"steps", Metrics.counterValue("exec.steps") - StepsBefore});
    if (Observer)
      Observer->onWaveCommitted(PhaseKey, WaveEnd, Count, BugsSoFar);
    if (Checkpointer && ++WavesSinceSave >= Policy.CheckpointInterval) {
      WavesSinceSave = 0;
      Checkpointer->saveEvaluation(
          {PhaseKey, WaveEnd, /*Complete=*/false, Evals,
           Har->snapshotBreakers()});
      if (Observer)
        Observer->onCheckpointSaved(PhaseKey, WaveEnd);
    }
  }
  if (Checkpointer && !Interrupted) {
    Checkpointer->saveEvaluation(
        {PhaseKey, Count, /*Complete=*/true, Evals, Har->snapshotBreakers()});
    if (Observer)
      Observer->onCheckpointSaved(PhaseKey, Count);
  }
  if (Provider)
    Provider->endPhase(PhaseKey, !Interrupted);
  return Evals;
}

std::vector<TestEvaluation>
CampaignEngine::evaluateShard(const ToolConfig &Tool, size_t WaveStart,
                              size_t WaveEnd, bool CrashesOnly,
                              const std::vector<std::string> &Sidelined) {
  const std::vector<HarnessedTarget> &Scan = Har->uncached();
  std::vector<const HarnessedTarget *> WaveTargets;
  WaveTargets.reserve(Scan.size());
  for (const HarnessedTarget &T : Scan)
    if (std::find(Sidelined.begin(), Sidelined.end(), T.name()) ==
        Sidelined.end())
      WaveTargets.push_back(&T);

  telemetry::TracePhaseScope EvalPhase("fuzz");
  std::vector<std::function<TestEvaluation()>> Jobs;
  Jobs.reserve(WaveEnd - WaveStart);
  for (size_t Index = WaveStart; Index < WaveEnd; ++Index)
    Jobs.push_back([this, &Tool, &WaveTargets, Index, CrashesOnly]() {
      telemetry::TracePhaseScope JobPhase("fuzz");
      return evaluateTestOn(CorpusData, Tool, WaveTargets, Policy.Seed, Index,
                            CrashesOnly, Policy.UniformInputs, Policy.Seed);
    });
  return runJobs(std::move(Jobs));
}

//===----------------------------------------------------------------------===//
// Table 3 + Figure 7 (RQ1)
//===----------------------------------------------------------------------===//

BugFindingData CampaignEngine::runBugFinding(const BugFindingConfig &Config) {
  BugFindingData Data;
  Data.Config = Config;
  for (const Target &T : Fleet)
    Data.TargetNames.push_back(T.name());

  size_t GroupSize =
      std::max<size_t>(1, Config.TestsPerTool / Config.NumGroups);

  for (const ToolConfig &Tool : Tools) {
    Data.ToolNames.push_back(Tool.Name);
    std::map<std::string, ToolTargetStats> &PerTarget = Data.Stats[Tool.Name];
    for (const Target &T : Fleet)
      PerTarget[T.name()].PerGroup.resize(Config.NumGroups);

    CampaignProgress Progress("bug-finding/" + Tool.Name,
                              Config.TestsPerTool);
    std::vector<TestEvaluation> Evals =
        evaluateTests(Tool, Config.TestsPerTool);
    for (size_t TestIndex = 0; TestIndex < Evals.size(); ++TestIndex) {
      size_t Group = std::min(Config.NumGroups - 1, TestIndex / GroupSize);
      for (const auto &[TargetName, Signature] :
           Evals[TestIndex].Signatures) {
        ToolTargetStats &Stats = PerTarget[TargetName];
        Stats.Distinct.insert(Signature);
        Stats.PerGroup[Group].insert(Signature);
        Progress.recordSignature(TargetName, Signature);
      }
      Progress.advance();
    }
  }
  return Data;
}

//===----------------------------------------------------------------------===//
// Reductions (RQ2)
//===----------------------------------------------------------------------===//

namespace {

/// What one wave scan job learns about one test: the (target index,
/// signature) pairs that expose a bug and, when there are any, the fuzzed
/// variant itself, kept so the reduction phase can reuse it instead of
/// re-running the (deterministic but not free) fuzzer. Outcomes live until
/// the end of the wave.
struct ScanOutcome {
  std::vector<std::pair<size_t, std::string>> Found;
  /// Indices (into the wanted-target list) whose run ended in a hard tool
  /// error — breaker food, committed serially after the wave.
  std::vector<size_t> HardErrors;
  FuzzResult Fuzzed;
  size_t ReferenceIndex = 0;
};

/// One reduction accepted by the serial cap/budget decision loop.
struct ReductionTask {
  size_t TestIndex = 0;
  const HarnessedTarget *T = nullptr;
  std::string Signature;
  const ScanOutcome *Scan = nullptr; // owned by the wave's scan results
};

/// What one completed reduction yields: the record plus the reproducer
/// artifacts a checkpointer persists (carried only while a checkpointer is
/// attached; empty otherwise).
struct ReductionOutcome {
  ReductionRecord Record;
  Module Reduced;
  TransformationSequence Minimized;
  /// The post-reduced reference module, when the policy's post-reduction
  /// stage ran (it then replaces the corpus reference in the reproducer).
  std::optional<Module> PostOriginal;
  size_t ReferenceIndex = 0;
};

} // namespace

ReductionData CampaignEngine::runReductions(const ReductionConfig &Config) {
  ReductionData Data;

  std::vector<std::string> WantedTargets = Config.TargetNames;
  if (WantedTargets.empty())
    WantedTargets = Fleet.gpulessNames();
  std::vector<std::string> WantedTools = Config.ToolNames;
  if (WantedTools.empty())
    WantedTools = {"spirv-fuzz", "glsl-fuzz"};

  // Harnessed, cache-aware target views: every scan and interestingness
  // run in this phase (and the dedup phase built on it) goes through the
  // harness; deterministic targets additionally hit the engine's
  // EvalCache.
  std::vector<const HarnessedTarget *> Wanted;
  for (const HarnessedTarget &T : Har->cached())
    if (std::find(WantedTargets.begin(), WantedTargets.end(), T.name()) !=
        WantedTargets.end())
      Wanted.push_back(&T);

  // Plan shared by every reduction task of this phase; the pool and the
  // per-tool AddFunction-shrink knob are filled in per task.
  ReductionPlan BasePlan;
  BasePlan.SnapshotInterval = Policy.ReplaySnapshotInterval;
  BasePlan.Order = Policy.ReduceOrder;
  BasePlan.PostReduce = Policy.PostReduce;
  BasePlan.PostPasses = Policy.PostReducePasses;

  // nullopt marks a scan job cut short by the deadline.
  using ScanResult = std::optional<ScanOutcome>;

  for (const ToolConfig &Tool : Tools) {
    if (std::find(WantedTools.begin(), WantedTools.end(), Tool.Name) ==
        WantedTools.end())
      continue;
    size_t ReductionsDone = 0;
    // (target, signature) -> count, for the per-signature cap.
    std::map<std::pair<std::string, std::string>, size_t> SignatureCounts;

    // Resume: the phase key covers every knob that shapes this tool's
    // schedule, so a checkpoint can never be replayed into a differently
    // configured run.
    std::string PhaseKey =
        "reduce/" + Tool.Name + "/" + std::to_string(Config.TestsPerTool) +
        "/" + std::to_string(Config.MaxReductionsPerTool) + "/" +
        std::to_string(Config.CapPerSignature) +
        (Config.CrashesOnly ? "/crashes" : "");
    // Pipeline knobs fold in only when non-default, so checkpoints from
    // paper-order campaigns keep their phase identity across versions.
    if (Policy.ReduceOrder != CandidateOrder::Paper)
      PhaseKey += std::string("/order=") + candidateOrderName(Policy.ReduceOrder);
    if (Policy.PostReduce) {
      PhaseKey += "/post";
      for (const std::string &Pass : Policy.PostReducePasses)
        PhaseKey += "=" + Pass;
    }
    for (const std::string &TargetName : WantedTargets)
      PhaseKey += "/" + TargetName;
    const size_t ToolRecordsStart = Data.Records.size();
    size_t StartWave = 0;
    bool AlreadyComplete = false;
    if (Checkpointer) {
      ReductionCheckpoint Saved;
      if (Checkpointer->loadReduction(PhaseKey, Saved)) {
        ReductionsDone = Saved.ReductionsDone;
        SignatureCounts = std::move(Saved.SignatureCounts);
        for (ReductionRecord &Record : Saved.Records)
          Data.Records.push_back(std::move(Record));
        Har->restoreBreakers(Saved.Breakers);
        AlreadyComplete = Saved.Complete;
        StartWave = Saved.NextWave;
      }
    }
    if (AlreadyComplete)
      continue;
    if (Observer)
      Observer->onPhaseStarted(PhaseKey, StartWave, Config.TestsPerTool);

    CampaignProgress Progress("reduction/" + Tool.Name,
                              Config.MaxReductionsPerTool,
                              /*ReportEvery=*/10);

    size_t WavesSinceSave = 0;
    bool Interrupted = false;
    for (size_t WaveStart = StartWave;
         WaveStart < Config.TestsPerTool &&
         ReductionsDone < Config.MaxReductionsPerTool;
         WaveStart += ShardSize) {
      if (checkDeadline()) {
        Interrupted = true;
        break;
      }
      size_t WaveEnd = std::min(Config.TestsPerTool, WaveStart + ShardSize);

      telemetry::TraceSpan WaveSpan("campaign.wave");
      const uint64_t WaveId = WaveSpan.id();
      if (WaveSpan.active()) {
        WaveSpan.note({"phase_key", PhaseKey});
        WaveSpan.note({"wave", WaveEnd});
      }

      // Quarantine snapshot at the wave boundary (serial, so identical at
      // any job count): sidelined targets sit this wave out.
      std::vector<char> Sidelined(Wanted.size(), 0);
      for (size_t TargetIdx = 0; TargetIdx < Wanted.size(); ++TargetIdx)
        Sidelined[TargetIdx] = Har->quarantined(Wanted[TargetIdx]->name());

      // Phase 1 (parallel): scan this wave's tests for bugs.
      std::vector<std::function<ScanResult()>> ScanJobs;
      ScanJobs.reserve(WaveEnd - WaveStart);
      for (size_t Index = WaveStart; Index < WaveEnd; ++Index)
        ScanJobs.push_back([this, &Tool, &Wanted, &Config, &Sidelined, Index,
                            WaveId]() -> ScanResult {
          if (cancelled())
            return std::nullopt;
          telemetry::TracePhaseScope JobPhase("scan");
          telemetry::TraceSpan JobSpan("campaign.scan", WaveId);
          JobSpan.note({"test", Index});
          ScanOutcome Out;
          Out.Fuzzed = regenerate(Tool, Index, Out.ReferenceIndex);
          const GeneratedProgram &Reference =
              CorpusData.References[Out.ReferenceIndex];
          for (size_t TargetIdx = 0; TargetIdx < Wanted.size(); ++TargetIdx) {
            if (Sidelined[TargetIdx])
              continue;
            const HarnessedTarget &T = *Wanted[TargetIdx];
            TargetRun Run = T.run(Out.Fuzzed.Variant, Reference.Input);
            if (Run.RunOutcome == Outcome::ToolError) {
              Out.HardErrors.push_back(TargetIdx);
              continue;
            }
            if (Run.interesting()) {
              Out.Found.emplace_back(TargetIdx, Run.Signature);
              continue;
            }
            if (Config.CrashesOnly || !T.canExecute())
              continue;
            TargetRun OriginalRun = T.run(Reference.M, Reference.Input);
            if (OriginalRun.executed() && Run.Result != OriginalRun.Result)
              Out.Found.emplace_back(TargetIdx, MiscompilationSignature);
          }
          if (Out.Found.empty())
            Out.Fuzzed = FuzzResult{}; // nothing to reduce; free the variant
          return Out;
        });
      std::vector<ScanResult> Scans = runJobs(std::move(ScanJobs));

      // Phase 2 (serial, in test-index order): commit breaker outcomes and
      // apply the per-signature cap and the per-tool budget exactly as the
      // serial driver would.
      std::vector<ReductionTask> Accepted;
      bool Truncated = false;
      for (size_t Offset = 0; Offset < Scans.size(); ++Offset) {
        if (!Scans[Offset]) {
          Truncated = true;
          break;
        }
        for (size_t TargetIdx = 0; TargetIdx < Wanted.size(); ++TargetIdx) {
          if (Sidelined[TargetIdx])
            continue;
          bool HardError =
              std::find(Scans[Offset]->HardErrors.begin(),
                        Scans[Offset]->HardErrors.end(),
                        TargetIdx) != Scans[Offset]->HardErrors.end();
          if (Har->recordOutcome(Wanted[TargetIdx]->name(), HardError) &&
              Observer)
            Observer->onTargetQuarantined(PhaseKey, WaveEnd,
                                          Wanted[TargetIdx]->name());
        }
        // Every bug observation is journaled, whether or not the cap or
        // budget below accepts it for reduction.
        if (Observer)
          for (const auto &[TargetIdx, Signature] : Scans[Offset]->Found)
            Observer->onBugFound(PhaseKey, WaveEnd, WaveStart + Offset,
                                 Wanted[TargetIdx]->name(), Signature);
        for (const auto &[TargetIdx, Signature] : Scans[Offset]->Found) {
          if (ReductionsDone >= Config.MaxReductionsPerTool)
            break;
          const HarnessedTarget *T = Wanted[TargetIdx];
          auto Key = std::make_pair(T->name(), Signature);
          if (SignatureCounts[Key] >= Config.CapPerSignature)
            continue;
          ++SignatureCounts[Key];
          Accepted.push_back(
              {WaveStart + Offset, T, Signature, &*Scans[Offset]});
          ++ReductionsDone;
        }
      }

      // Phase 3: run the accepted reductions; aggregate records in
      // acceptance order. Two schedules, same records:
      //  - speculative (spirv-fuzz tools, pool available): reductions run
      //    one at a time on this thread while each reduction speculates
      //    its delta-debugging candidates across the pool. Reductions must
      //    not themselves be pool jobs then — a job submitting to and
      //    blocking on its own pool can deadlock it.
      //  - otherwise: reductions fan out across the pool as before
      //    (glsl-fuzz's group reducer has no speculative path).
      const bool Speculative =
          Policy.SpeculativeReduction && Pool && Tool.Name != "glsl-fuzz";
      auto RunTask = [this, &Tool, &BasePlan, Speculative,
                      WaveId](const ReductionTask &Task)
          -> std::optional<ReductionOutcome> {
        if (cancelled())
          return std::nullopt;
        telemetry::TracePhaseScope JobPhase("reduce");
        telemetry::TraceSpan JobSpan("campaign.reduce", WaveId);
        JobSpan.note({"test", Task.TestIndex});
        JobSpan.note({"target", Task.T->name()});
        JobSpan.note({"signature", Task.Signature});
        // The scan already fuzzed this test; reuse its result (tasks for
        // different targets may share one outcome — reads only).
        const FuzzResult &Fuzzed = Task.Scan->Fuzzed;
        const GeneratedProgram &Reference =
            CorpusData.References[Task.Scan->ReferenceIndex];

        InterestingnessTest Test = makeInterestingnessTestFor(
            *Task.T, Task.Signature, Reference.M, Reference.Input);
        ReductionPlan TaskPlan = BasePlan;
        TaskPlan.Pool = Speculative ? Pool.get() : nullptr;
        // The ğ3.4 spirv-reduce step (AddFunction payload shrinking) is a
        // pipeline stage now; glsl-fuzz's group reducer has neither it nor
        // a sequence-level pipeline.
        TaskPlan.ShrinkFunctions = Tool.Name != "glsl-fuzz";
        ReduceResult Reduced =
            Tool.Name == "glsl-fuzz"
                ? reduceByGroups(Reference.M, Reference.Input,
                                 Fuzzed.Sequence, Fuzzed.PassGroups, Test)
                : ReductionPipeline(TaskPlan).run(Reference.M,
                                                  Reference.Input,
                                                  Fuzzed.Sequence, Test);

        ReductionOutcome Out;
        ReductionRecord &Record = Out.Record;
        Record.Tool = Tool.Name;
        Record.TargetName = Task.T->name();
        Record.Signature = Task.Signature;
        Record.TestIndex = Task.TestIndex;
        Record.OriginalCount = Reference.M.instructionCount();
        Record.UnreducedCount = Fuzzed.Variant.instructionCount();
        Record.ReducedCount = Reduced.ReducedVariant.instructionCount();
        Record.MinimizedLength = Reduced.Minimized.size();
        Record.Checks = Reduced.Checks;
        Record.SpeculativeChecks = Reduced.SpeculativeChecks;
        Record.Types = dedupTypesOf(Reduced.Minimized);
        Record.PostStats = std::move(Reduced.PostStats);
        Out.ReferenceIndex = Task.Scan->ReferenceIndex;
        if (Checkpointer || Sink) {
          Out.Reduced = std::move(Reduced.ReducedVariant);
          Out.Minimized = std::move(Reduced.Minimized);
          if (!Record.PostStats.empty())
            Out.PostOriginal = std::move(Reduced.ReducedOriginal);
        }
        return Out;
      };

      std::vector<std::optional<ReductionOutcome>> Outcomes;
      if (Speculative) {
        Outcomes.reserve(Accepted.size());
        for (const ReductionTask &Task : Accepted)
          Outcomes.push_back(RunTask(Task));
      } else {
        std::vector<std::function<std::optional<ReductionOutcome>()>>
            ReduceJobs;
        ReduceJobs.reserve(Accepted.size());
        for (const ReductionTask &Task : Accepted)
          ReduceJobs.push_back([&RunTask, Task] { return RunTask(Task); });
        Outcomes = runJobs(std::move(ReduceJobs));
      }
      for (std::optional<ReductionOutcome> &Out : Outcomes) {
        if (!Out) {
          Truncated = true;
          break;
        }
        Progress.recordSignature(Out->Record.TargetName,
                                 Out->Record.Signature);
        Progress.advance();
        telemetry::MetricsRegistry::global().add("campaign.reductions");
        if (Observer) {
          Observer->onReductionStep(PhaseKey, WaveEnd, Out->Record);
          for (const PostReducePassStats &Stat : Out->Record.PostStats)
            if (Stat.Attempted > 0)
              Observer->onPostReduceStep(PhaseKey, WaveEnd, Out->Record,
                                         Stat);
        }
        if (Checkpointer || Sink) {
          const GeneratedProgram &Reference =
              CorpusData.References[Out->ReferenceIndex];
          // With post-reduction on, the reproducer's reference is the
          // post-reduced module the records were measured against.
          const Module &Original =
              Out->PostOriginal ? *Out->PostOriginal : Reference.M;
          if (Checkpointer)
            Checkpointer->recordReproducer(Out->Record, Original,
                                           Reference.Input, Out->Reduced,
                                           Out->Minimized);
          if (Sink)
            Sink(Out->Record, Original, Reference.Input, Out->Reduced,
                 Out->Minimized);
        }
        Data.Records.push_back(std::move(Out->Record));
      }
      if (Truncated) {
        Interrupted = true;
        break;
      }
      if (Observer)
        Observer->onWaveCommitted(PhaseKey, WaveEnd, Config.TestsPerTool,
                                  ReductionsDone);
      if (Checkpointer && ++WavesSinceSave >= Policy.CheckpointInterval) {
        WavesSinceSave = 0;
        Checkpointer->saveReduction(
            {PhaseKey, WaveEnd, /*Complete=*/false, ReductionsDone,
             SignatureCounts,
             std::vector<ReductionRecord>(
                 Data.Records.begin() +
                     static_cast<ptrdiff_t>(ToolRecordsStart),
                 Data.Records.end()),
             Har->snapshotBreakers()});
        if (Observer)
          Observer->onCheckpointSaved(PhaseKey, WaveEnd);
      }
    }
    if (Checkpointer && !Interrupted) {
      Checkpointer->saveReduction(
          {PhaseKey, Config.TestsPerTool, /*Complete=*/true, ReductionsDone,
           SignatureCounts,
           std::vector<ReductionRecord>(
               Data.Records.begin() + static_cast<ptrdiff_t>(ToolRecordsStart),
               Data.Records.end()),
           Har->snapshotBreakers()});
      if (Observer)
        Observer->onCheckpointSaved(PhaseKey, Config.TestsPerTool);
    }
  }
  return Data;
}

//===----------------------------------------------------------------------===//
// Table 4 (RQ3)
//===----------------------------------------------------------------------===//

DedupData CampaignEngine::runDedup(const ReductionConfig &ConfigIn) {
  ReductionConfig Config = ConfigIn;
  Config.CrashesOnly = true; // ğ4.3: crash bugs give reliable ground truth
  Config.ToolNames = {"spirv-fuzz"};
  if (Config.TargetNames.empty()) {
    // All targets except NVIDIA (which was excluded in the paper because
    // of driver-induced machine freezes).
    for (const Target &T : Fleet)
      if (T.name() != "NVIDIA")
        Config.TargetNames.push_back(T.name());
  }

  ReductionData Reductions = runReductions(Config);

  DedupData Data;
  Data.Total.TargetName = "Total";
  std::set<std::string> TotalSigs;
  CampaignProgress Progress("dedup", Config.TargetNames.size(),
                            /*ReportEvery=*/1);

  if (Observer)
    Observer->onPhaseStarted("dedup", 0, Config.TargetNames.size());
  telemetry::TracePhaseScope DedupPhase("dedup");

  for (size_t TargetIdx = 0; TargetIdx < Config.TargetNames.size();
       ++TargetIdx) {
    const std::string &TargetName = Config.TargetNames[TargetIdx];
    // Gather this target's reduced tests in order.
    std::vector<const ReductionRecord *> Tests;
    for (const ReductionRecord &Record : Reductions.Records)
      if (Record.TargetName == TargetName)
        Tests.push_back(&Record);
    if (Tests.empty())
      continue;

    telemetry::TraceSpan TargetSpan("campaign.dedup");
    TargetSpan.note({"target", TargetName});

    std::vector<std::set<TransformationKind>> TestTypes;
    std::set<std::string> Sigs;
    for (const ReductionRecord *Record : Tests) {
      TestTypes.push_back(Record->Types);
      Sigs.insert(Record->Signature);
    }
    std::vector<size_t> Chosen = deduplicateTests(TestTypes);
    std::set<std::string> Covered;
    for (size_t Index : Chosen)
      Covered.insert(Tests[Index]->Signature);

    DedupTargetResult Result;
    Result.TargetName = TargetName;
    Result.Tests = Tests.size();
    Result.Sigs = Sigs.size();
    Result.Reports = Chosen.size();
    Result.Distinct = Covered.size();
    Result.Dups = Result.Reports - Result.Distinct;
    Data.PerTarget.push_back(Result);

    Data.Total.Tests += Result.Tests;
    Data.Total.Reports += Result.Reports;
    Data.Total.Dups += Result.Dups;
    Data.Total.Distinct += Result.Distinct;
    for (const std::string &Sig : Sigs)
      TotalSigs.insert(TargetName + ":" + Sig);
    Progress.recordClasses(Data.Total.Distinct);
    Progress.advance();
    if (Observer)
      Observer->onWaveCommitted("dedup", TargetIdx + 1,
                                Config.TargetNames.size(),
                                Data.Total.Distinct);
  }
  Data.Total.Sigs = TotalSigs.size();
  return Data;
}
