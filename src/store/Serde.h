//===- store/Serde.h - Versioned binary store format ------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent store's binary container and the codecs for the three
/// campaign payload types: modules, fact sets and transformation sequences
/// (the sequence codec lives in core/Transformation.h, next to the kind
/// tables). The container is
///
///   MagicBytes(8) FormatVersion(u32) PayloadChecksum(u64)
///   SectionCount(u32) { Tag(4) Size(u64) Payload(Size) }*
///
/// with every multi-byte value little-endian (support/BinaryIO.h), so files
/// are identical across hosts. The checksum is a StructuralHasher digest of
/// the section bytes: any bit flip, truncation or stray append is rejected
/// at decode with a diagnostic, never undefined behaviour, and files whose
/// FormatVersion is newer than this build understands are refused rather
/// than misparsed.
///
//===----------------------------------------------------------------------===//

#ifndef STORE_SERDE_H
#define STORE_SERDE_H

#include "campaign/Campaign.h"
#include "core/Fact.h"
#include "exec/Value.h"
#include "ir/Module.h"
#include "support/BinaryIO.h"

#include <string>
#include <vector>

namespace spvfuzz {

/// The current on-disk format version. Bump when the container or any
/// codec changes incompatibly; readers refuse anything newer and branch on
/// older versions where a codec grew fields (see readRecord's post-
/// reduction stats, added in version 2). Version 3: repro.msb may carry an
/// ATTR section (triage attribution); older files simply lack it, so
/// readers accept every version up to the current one unchanged.
inline constexpr uint32_t StoreFormatVersion = 3;

/// A decoded (or to-be-encoded) store file: a version plus tagged sections.
struct StoreFile {
  uint32_t Version = StoreFormatVersion;
  std::vector<std::pair<std::string, std::string>> Sections;

  /// Appends a section. Tags are exactly four characters.
  void add(const std::string &Tag, std::string Payload);

  /// Returns the payload of the first section with \p Tag, or nullptr.
  const std::string *find(const std::string &Tag) const;

  /// Encodes the container (magic, version, checksum, sections).
  std::string encode() const;

  /// Decodes and validates a container. On failure returns false with a
  /// diagnostic (bad magic, future version, checksum mismatch, truncation).
  static bool decode(const std::string &Bytes, StoreFile &Out,
                     std::string &ErrorOut);
};

/// Writes \p Bytes to \p Path crash-safely: write to a temporary file in
/// the same directory, fsync it, rename over \p Path, then fsync the
/// directory. A crash at any point leaves either the old file or the new
/// one, never a torn mixture.
bool atomicWriteFile(const std::string &Path, const std::string &Bytes,
                     std::string &ErrorOut);

/// Reads a whole file; false with a diagnostic if unreadable.
bool readFileBytes(const std::string &Path, std::string &Out,
                   std::string &ErrorOut);

// --- Payload codecs -------------------------------------------------------

/// Modules round-trip through hashModule equality: the codec covers
/// exactly Bound, EntryPointId, globals and functions.
void writeModuleBinary(ByteWriter &W, const Module &M);
bool readModuleBinary(ByteReader &R, Module &M);

/// Fact sets are written in canonical form (sorted id sets, the synonym
/// relation as canonicalSynonyms pairs), so two managers holding the same
/// facts serialize to identical bytes regardless of insertion order.
void writeFactsBinary(ByteWriter &W, const FactManager &Facts);
bool readFactsBinary(ByteReader &R, FactManager &Facts);

/// Shader inputs (bindings in key order; values recurse with a depth cap).
void writeShaderInputBinary(ByteWriter &W, const ShaderInput &Input);
bool readShaderInputBinary(ByteReader &R, ShaderInput &Input);

/// One test's evaluation result (campaign/Campaign.h), exactly as the
/// evaluation-checkpoint codec stores it. Shared between checkpoint files
/// and the serve layer's ShardProtocol, so a shard result a worker ships
/// is byte-for-byte the representation the coordinator checkpoints.
void writeTestEvaluationBinary(ByteWriter &W, const TestEvaluation &Eval);
bool readTestEvaluationBinary(ByteReader &R, TestEvaluation &Eval);

} // namespace spvfuzz

#endif // STORE_SERDE_H
