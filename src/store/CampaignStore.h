//===- store/CampaignStore.h - Persistent campaign store --------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent campaign store: durable checkpoints, a cross-campaign
/// bug database and reduced reproducers, under one directory:
///
///   <dir>/MANIFEST.json        human-readable mirror (write-only)
///   <dir>/checkpoint/          manifest.bin + one .ckpt per phase +
///                              metrics.json (telemetry at the last commit)
///   <dir>/bugs/<bucket>/       one dir per dedup bucket (target,
///                              signature, transformation-type set):
///                              meta.json, repro.msb, repro.txt, delta.diff
///   <dir>/corpus/              one .msb per reduced reproducer, the gc'able
///                              bulk storage
///
/// Every file is written write-temp-then-rename with fsync (Serde.h's
/// atomicWriteFile), so a crash leaves the store at some complete earlier
/// state, never torn. The store implements CampaignCheckpointer: attach it
/// to a CampaignEngine and the engine checkpoints at wave boundaries;
/// reopening with Resume and re-running the same campaign replays the
/// checkpoints and continues — byte-identical to an uninterrupted run.
///
/// Buckets are keyed per campaign id (seed + config digest), which makes
/// checkpoint replay idempotent and lets independent campaigns accumulate
/// into one store; merge() folds a second store's campaigns in the same
/// way, the cross-campaign deduplication of ISSUE 5.
///
//===----------------------------------------------------------------------===//

#ifndef STORE_CAMPAIGNSTORE_H
#define STORE_CAMPAIGNSTORE_H

#include "campaign/CampaignEngine.h"
#include "triage/Attribution.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spvfuzz {

/// One dedup bucket of one campaign: (target, signature, type set) plus
/// how many reductions landed in it and where its representative
/// reproducer lives.
struct BugBucket {
  std::string Target;
  std::string Signature;
  /// Sorted "+"-joined transformation kind names of the minimized
  /// sequence's dedup types (Figure 6's bucket key).
  std::string TypesKey;
  /// Bucket directory name under bugs/.
  std::string Dir;
  uint64_t Count = 0;
};

/// One campaign recorded in the store.
struct CampaignEntry {
  std::string Id;           // "seed<seed>-<digest16>"
  std::string ConfigDigest; // 16 hex chars over the result-shaping policy
  std::vector<BugBucket> Buckets;
};

/// The store-level manifest: every campaign that has written here.
struct StoreManifest {
  std::vector<CampaignEntry> Campaigns;

  CampaignEntry *find(const std::string &Id);
  const CampaignEntry *find(const std::string &Id) const;
};

/// Digest over the result-shaping policy fields (seed, transformation
/// limit, harness knobs — not jobs/deadline/checkpoint cadence, which
/// never change results). 16 lowercase hex characters.
std::string campaignConfigDigest(const ExecutionPolicy &Policy);

/// The campaign id a policy maps to: "seed<seed>-<digest16>".
std::string campaignIdFor(const ExecutionPolicy &Policy);

class CampaignStore : public CampaignCheckpointer {
public:
  /// Opens (creating if needed) the store at \p Dir for the campaign
  /// \p Policy describes. Without Policy.Resume the campaign id must not
  /// already be in the manifest (fresh store or cross-campaign
  /// accumulation only); with Resume an existing entry must match the
  /// config digest. Returns nullptr with a diagnostic on layout or
  /// validation failure.
  static std::unique_ptr<CampaignStore> open(const std::string &Dir,
                                             const ExecutionPolicy &Policy,
                                             std::string &ErrorOut);

  /// Opens an existing store read-mostly for the triage CLI (db/report):
  /// no campaign registration, no resume checks. The manifest must parse.
  static std::unique_ptr<CampaignStore> openForTools(const std::string &Dir,
                                                     std::string &ErrorOut);

  const std::string &dir() const { return Root; }
  const std::string &campaignId() const { return CampaignId; }
  const StoreManifest &manifest() const { return Manifest; }

  // --- CampaignCheckpointer ------------------------------------------------

  bool loadEvaluation(const std::string &Phase,
                      EvaluationCheckpoint &Out) override;
  void saveEvaluation(const EvaluationCheckpoint &Checkpoint) override;
  bool loadReduction(const std::string &Phase,
                     ReductionCheckpoint &Out) override;
  void saveReduction(const ReductionCheckpoint &Checkpoint) override;
  void recordReproducer(const ReductionRecord &Record, const Module &Original,
                        const ShaderInput &Input, const Module &Reduced,
                        const TransformationSequence &Minimized) override;

  // --- Triage operations ---------------------------------------------------

  /// Buckets aggregated across campaigns, sorted by (target, signature,
  /// types): the `db list` view. Count sums over campaigns.
  std::vector<BugBucket> aggregatedBuckets() const;

  /// Reads \p Bucket's reproducer artifacts back out of repro.msb (the
  /// inverse of recordReproducer's write). Returns false with a diagnostic
  /// if the bucket has no reproducer or it fails to decode.
  bool loadReproducer(const BugBucket &Bucket, Module &OriginalOut,
                      ShaderInput &InputOut, Module &ReducedOut,
                      TransformationSequence &MinimizedOut,
                      std::string &ErrorOut) const;

  /// Persists \p Attr into \p Bucket: rewrites repro.msb with an ATTR
  /// section (replacing any previous one) and appends/replaces the
  /// "attribution" key of meta.json. Attribution lives in the bucket, not
  /// the manifest — commitManifest rebuilds manifest entries from
  /// checkpoint records and would drop anything stored there.
  bool recordAttribution(const BugBucket &Bucket,
                         const triage::BugAttribution &Attr,
                         std::string &ErrorOut);

  /// Loads the attribution persisted for \p Bucket; false if the bucket
  /// has none (not an error — triage may simply not have run).
  bool loadAttribution(const BugBucket &Bucket,
                       triage::BugAttribution &Out) const;

  /// Folds \p Other's campaigns into this store: campaigns whose id this
  /// store already has are skipped (same campaign, same buckets); new ones
  /// bring their manifest entries, bucket directories and corpus files.
  /// Returns false with a diagnostic on I/O failure.
  bool merge(const CampaignStore &Other, std::string &ErrorOut);

  /// Folds every store found directly under \p Dir into this one (merge(),
  /// applied to each subdirectory in sorted order). Subdirectories that do
  /// not hold a parseable store are counted in \p SkippedOut and left
  /// alone; \p MergedOut counts the stores folded. Returns false with a
  /// diagnostic only on I/O failure while merging an actual store.
  bool mergeFromDirectory(const std::string &Dir, size_t &MergedOut,
                          size_t &SkippedOut, std::string &ErrorOut);

  /// Evicts corpus entries until their total size fits \p BudgetBytes,
  /// using ReplayCache's farthest-first policy: repeatedly keep every
  /// other entry (newest of each pair). Returns the number of files
  /// removed.
  size_t gc(size_t BudgetBytes);

  /// Total bytes currently in corpus/.
  size_t corpusBytes() const;

  /// Sorted corpus file names (relative to corpus/).
  std::vector<std::string> corpusFiles() const;

  /// Restores persisted telemetry (checkpoint/metrics.json) into the
  /// global metrics registry; no-op if none was saved yet.
  void restoreMetrics() const;

  /// Reads the persisted telemetry snapshot; false if none was saved.
  bool loadMetrics(telemetry::MetricsSnapshot &Out, std::string &ErrorOut) const;

private:
  CampaignStore() = default;

  bool loadCheckpointFile(const std::string &Phase, const char *SectionTag,
                          std::string &PayloadOut, uint32_t &VersionOut);
  void saveCheckpointFile(const std::string &Phase, const char *SectionTag,
                          std::string Payload);
  /// Rebuilds this campaign's manifest entry from every reduction record
  /// in its checkpoints (idempotent under replay), then persists the
  /// manifest and the telemetry snapshot.
  void commitManifest();
  /// Persists the manifest exactly as merge() left it (no rebuild from
  /// local checkpoints, which would drop the foreign campaigns).
  bool commitMergedManifest(std::string &ErrorOut);
  void writeManifestMirror() const;

  std::string Root;
  std::string CampaignId;
  std::string ConfigDigest;
  StoreManifest Manifest;
  /// Reduction records per phase key, accumulated from checkpoint saves
  /// (and reloaded from disk at open), the source of bucket counts.
  std::map<std::string, std::vector<ReductionRecord>> PhaseRecords;
};

} // namespace spvfuzz

#endif // STORE_CAMPAIGNSTORE_H
