//===- store/Serde.cpp - Versioned binary store format ---------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "store/Serde.h"

#include "support/ModuleHash.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace spvfuzz;

namespace {

constexpr char StoreMagic[8] = {'M', 'S', 'P', 'V', 'S', 'T', 'O', 'R'};

/// Checksums the body under a given header version by feeding it to
/// StructuralHasher a word at a time (version and length first, so any
/// single corrupted header or body byte is caught — a version flip either
/// trips the version check or this checksum).
uint64_t checksumBytes(uint32_t Version, const std::string &Bytes) {
  StructuralHasher H;
  H.word(Version);
  H.word(Bytes.size());
  size_t I = 0;
  for (; I + 8 <= Bytes.size(); I += 8) {
    uint64_t Word = 0;
    for (size_t B = 0; B < 8; ++B)
      Word |= static_cast<uint64_t>(static_cast<uint8_t>(Bytes[I + B]))
              << (8 * B);
    H.word(Word);
  }
  if (I < Bytes.size()) {
    uint64_t Word = 0;
    for (size_t B = 0; I + B < Bytes.size(); ++B)
      Word |= static_cast<uint64_t>(static_cast<uint8_t>(Bytes[I + B]))
              << (8 * B);
    H.word(Word);
  }
  return H.digest();
}

} // namespace

void StoreFile::add(const std::string &Tag, std::string Payload) {
  assert(Tag.size() == 4 && "section tags are exactly four characters");
  Sections.emplace_back(Tag, std::move(Payload));
}

const std::string *StoreFile::find(const std::string &Tag) const {
  for (const auto &[SectionTag, Payload] : Sections)
    if (SectionTag == Tag)
      return &Payload;
  return nullptr;
}

std::string StoreFile::encode() const {
  ByteWriter Body;
  Body.u32(static_cast<uint32_t>(Sections.size()));
  for (const auto &[Tag, Payload] : Sections) {
    assert(Tag.size() == 4 && "section tags are exactly four characters");
    Body.raw(Tag);
    Body.u64(Payload.size());
    Body.raw(Payload);
  }
  std::string BodyBytes = Body.take();

  ByteWriter Out;
  Out.raw(std::string(StoreMagic, sizeof(StoreMagic)));
  Out.u32(Version);
  Out.u64(checksumBytes(Version, BodyBytes));
  Out.raw(BodyBytes);
  return Out.take();
}

bool StoreFile::decode(const std::string &Bytes, StoreFile &Out,
                       std::string &ErrorOut) {
  Out.Sections.clear();
  if (Bytes.size() < sizeof(StoreMagic) + 4 + 8) {
    ErrorOut = "not a store file: shorter than the fixed header";
    return false;
  }
  if (memcmp(Bytes.data(), StoreMagic, sizeof(StoreMagic)) != 0) {
    ErrorOut = "not a store file: bad magic bytes";
    return false;
  }
  ByteReader Header(Bytes.data() + sizeof(StoreMagic),
                    Bytes.size() - sizeof(StoreMagic));
  uint32_t Version = 0;
  uint64_t Checksum = 0;
  Header.u32(Version);
  Header.u64(Checksum);
  if (Version > StoreFormatVersion) {
    ErrorOut = "store file has format version " + std::to_string(Version) +
               " but this build understands only up to " +
               std::to_string(StoreFormatVersion);
    return false;
  }
  Out.Version = Version;

  std::string BodyBytes =
      Bytes.substr(sizeof(StoreMagic) + 4 + 8);
  if (checksumBytes(Version, BodyBytes) != Checksum) {
    ErrorOut = "store file is corrupt: payload checksum mismatch";
    return false;
  }

  ByteReader R(BodyBytes);
  uint32_t SectionCount = 0;
  // Each section occupies at least tag (4) + size (8) bytes.
  if (!R.u32(SectionCount) || !R.checkCount(SectionCount, 12)) {
    ErrorOut = "store file is corrupt: " + R.error();
    return false;
  }
  for (uint32_t I = 0; I < SectionCount; ++I) {
    if (R.remaining() < 4) {
      R.failAt("truncated section tag");
      ErrorOut = "store file is corrupt: " + R.error();
      return false;
    }
    std::string Tag(BodyBytes.data() + R.position(), 4);
    R.skip(4);
    uint64_t Size = 0;
    if (!R.u64(Size) || Size > R.remaining()) {
      if (R.ok())
        R.failAt("section size exceeds remaining bytes");
      ErrorOut = "store file is corrupt: " + R.error();
      return false;
    }
    Out.Sections.emplace_back(
        std::move(Tag),
        BodyBytes.substr(R.position(), static_cast<size_t>(Size)));
    R.skip(static_cast<size_t>(Size));
  }
  if (!R.atEnd()) {
    ErrorOut = "store file is corrupt: " +
               std::to_string(R.remaining()) + " trailing bytes";
    return false;
  }
  return true;
}

bool spvfuzz::atomicWriteFile(const std::string &Path,
                              const std::string &Bytes,
                              std::string &ErrorOut) {
  std::string TempPath = Path + ".tmp";
  int Fd = ::open(TempPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    ErrorOut = "cannot create " + TempPath + ": " + strerror(errno);
    return false;
  }
  size_t Written = 0;
  while (Written < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Written, Bytes.size() - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ErrorOut = "write to " + TempPath + " failed: " + strerror(errno);
      ::close(Fd);
      ::unlink(TempPath.c_str());
      return false;
    }
    Written += static_cast<size_t>(N);
  }
  if (::fsync(Fd) != 0) {
    ErrorOut = "fsync of " + TempPath + " failed: " + strerror(errno);
    ::close(Fd);
    ::unlink(TempPath.c_str());
    return false;
  }
  ::close(Fd);
  if (::rename(TempPath.c_str(), Path.c_str()) != 0) {
    ErrorOut = "rename to " + Path + " failed: " + strerror(errno);
    ::unlink(TempPath.c_str());
    return false;
  }
  // Make the rename itself durable.
  std::string Dir = ".";
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos)
    Dir = Path.substr(0, Slash);
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return true;
}

bool spvfuzz::readFileBytes(const std::string &Path, std::string &Out,
                            std::string &ErrorOut) {
  FILE *File = fopen(Path.c_str(), "rb");
  if (!File) {
    ErrorOut = "cannot open " + Path + ": " + strerror(errno);
    return false;
  }
  Out.clear();
  char Buf[65536];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  bool Ok = !ferror(File);
  fclose(File);
  if (!Ok)
    ErrorOut = "read of " + Path + " failed";
  return Ok;
}

// --- Instruction / module codec -------------------------------------------

namespace {

void writeInstruction(ByteWriter &W, const Instruction &Inst) {
  W.u8(static_cast<uint8_t>(Inst.Opcode));
  W.u32(Inst.ResultType);
  W.u32(Inst.Result);
  W.u32(static_cast<uint32_t>(Inst.Operands.size()));
  for (const Operand &Op : Inst.Operands) {
    W.u8(static_cast<uint8_t>(Op.OperandKind));
    W.u32(Op.Word);
  }
}

bool readInstruction(ByteReader &R, Instruction &Inst) {
  uint8_t OpcodeByte = 0;
  if (!R.u8(OpcodeByte))
    return false;
  if (OpcodeByte >= NumOpcodes)
    return R.failAt("unknown opcode " + std::to_string(OpcodeByte));
  Inst.Opcode = static_cast<Op>(OpcodeByte);
  uint32_t OperandCount = 0;
  if (!R.u32(Inst.ResultType) || !R.u32(Inst.Result) ||
      !R.u32(OperandCount) || !R.checkCount(OperandCount, 5))
    return false;
  Inst.Operands.clear();
  Inst.Operands.reserve(OperandCount);
  for (uint32_t I = 0; I < OperandCount; ++I) {
    uint8_t KindByte = 0;
    uint32_t Word = 0;
    if (!R.u8(KindByte) || !R.u32(Word))
      return false;
    if (KindByte > static_cast<uint8_t>(Operand::Kind::Literal))
      return R.failAt("unknown operand kind " + std::to_string(KindByte));
    Inst.Operands.push_back(
        {static_cast<Operand::Kind>(KindByte), Word});
  }
  return true;
}

/// Minimum encoded size of one instruction: opcode + result type + result +
/// operand count.
constexpr size_t MinInstructionBytes = 1 + 4 + 4 + 4;

bool readInstructionList(ByteReader &R, std::vector<Instruction> &Out) {
  uint32_t Count = 0;
  if (!R.u32(Count) || !R.checkCount(Count, MinInstructionBytes))
    return false;
  Out.clear();
  Out.resize(Count);
  for (uint32_t I = 0; I < Count; ++I)
    if (!readInstruction(R, Out[I]))
      return false;
  return true;
}

void writeInstructionList(ByteWriter &W,
                          const std::vector<Instruction> &Insts) {
  W.u32(static_cast<uint32_t>(Insts.size()));
  for (const Instruction &Inst : Insts)
    writeInstruction(W, Inst);
}

} // namespace

void spvfuzz::writeModuleBinary(ByteWriter &W, const Module &M) {
  W.u32(M.Bound);
  W.u32(M.EntryPointId);
  writeInstructionList(W, M.GlobalInsts);
  W.u32(static_cast<uint32_t>(M.Functions.size()));
  for (const Function &F : M.Functions) {
    writeInstruction(W, F.Def);
    writeInstructionList(W, F.Params);
    W.u32(static_cast<uint32_t>(F.Blocks.size()));
    for (const BasicBlock &Block : F.Blocks) {
      W.u32(Block.LabelId);
      writeInstructionList(W, Block.Body);
    }
  }
}

bool spvfuzz::readModuleBinary(ByteReader &R, Module &M) {
  M = Module();
  uint32_t FunctionCount = 0;
  if (!R.u32(M.Bound) || !R.u32(M.EntryPointId) ||
      !readInstructionList(R, M.GlobalInsts) || !R.u32(FunctionCount) ||
      !R.checkCount(FunctionCount, MinInstructionBytes + 8))
    return false;
  M.Functions.resize(FunctionCount);
  for (Function &F : M.Functions) {
    uint32_t BlockCount = 0;
    if (!readInstruction(R, F.Def) || !readInstructionList(R, F.Params) ||
        !R.u32(BlockCount) || !R.checkCount(BlockCount, 8))
      return false;
    F.Blocks.resize(BlockCount);
    for (BasicBlock &Block : F.Blocks)
      if (!R.u32(Block.LabelId) || !readInstructionList(R, Block.Body))
        return false;
  }
  return true;
}

// --- Value / shader-input codec -------------------------------------------

namespace {

/// Composites in practice nest a handful of levels; a hostile file cannot
/// recurse past this.
constexpr uint32_t MaxValueDepth = 64;

void writeValue(ByteWriter &W, const Value &V) {
  W.u8(static_cast<uint8_t>(V.ValueKind));
  W.u32(static_cast<uint32_t>(V.Scalar));
  W.u32(static_cast<uint32_t>(V.Elements.size()));
  for (const Value &Element : V.Elements)
    writeValue(W, Element);
}

bool readValue(ByteReader &R, Value &V, uint32_t Depth) {
  if (Depth > MaxValueDepth)
    return R.failAt("value nesting too deep");
  uint8_t KindByte = 0;
  uint32_t Scalar = 0;
  uint32_t ElementCount = 0;
  if (!R.u8(KindByte) || !R.u32(Scalar) || !R.u32(ElementCount) ||
      !R.checkCount(ElementCount, 9))
    return false;
  if (KindByte > static_cast<uint8_t>(Value::Kind::Pointer))
    return R.failAt("unknown value kind " + std::to_string(KindByte));
  V.ValueKind = static_cast<Value::Kind>(KindByte);
  V.Scalar = static_cast<int32_t>(Scalar);
  V.Elements.clear();
  V.Elements.resize(ElementCount);
  for (Value &Element : V.Elements)
    if (!readValue(R, Element, Depth + 1))
      return false;
  return true;
}

} // namespace

void spvfuzz::writeShaderInputBinary(ByteWriter &W, const ShaderInput &Input) {
  W.u32(static_cast<uint32_t>(Input.Bindings.size()));
  for (const auto &[Binding, V] : Input.Bindings) {
    W.u32(Binding);
    writeValue(W, V);
  }
}

bool spvfuzz::readShaderInputBinary(ByteReader &R, ShaderInput &Input) {
  Input.Bindings.clear();
  uint32_t Count = 0;
  if (!R.u32(Count) || !R.checkCount(Count, 13))
    return false;
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Binding = 0;
    Value V;
    if (!R.u32(Binding) || !readValue(R, V, 0))
      return false;
    Input.Bindings[Binding] = std::move(V);
  }
  return true;
}

// --- Test evaluation codec --------------------------------------------------

void spvfuzz::writeTestEvaluationBinary(ByteWriter &W,
                                        const TestEvaluation &Eval) {
  W.u64(Eval.Seed);
  W.u64(Eval.ReferenceIndex);
  W.u32(static_cast<uint32_t>(Eval.Signatures.size()));
  for (const auto &[Target, Signature] : Eval.Signatures) {
    W.str(Target);
    W.str(Signature);
  }
  W.u32(static_cast<uint32_t>(Eval.ToolErrored.size()));
  for (const std::string &Name : Eval.ToolErrored)
    W.str(Name);
}

bool spvfuzz::readTestEvaluationBinary(ByteReader &R, TestEvaluation &Eval) {
  Eval.Signatures.clear();
  Eval.ToolErrored.clear();
  uint64_t ReferenceIndex = 0;
  uint32_t SigCount = 0;
  if (!R.u64(Eval.Seed) || !R.u64(ReferenceIndex) || !R.u32(SigCount) ||
      !R.checkCount(SigCount, 8))
    return false;
  Eval.ReferenceIndex = static_cast<size_t>(ReferenceIndex);
  for (uint32_t S = 0; S < SigCount; ++S) {
    std::string Target, Signature;
    if (!R.str(Target) || !R.str(Signature))
      return false;
    Eval.Signatures[std::move(Target)] = std::move(Signature);
  }
  uint32_t ErroredCount = 0;
  if (!R.u32(ErroredCount) || !R.checkCount(ErroredCount, 4))
    return false;
  for (uint32_t E = 0; E < ErroredCount; ++E) {
    std::string Name;
    if (!R.str(Name))
      return false;
    Eval.ToolErrored.push_back(std::move(Name));
  }
  return true;
}

// --- Fact codec ------------------------------------------------------------

namespace {

std::vector<uint32_t> sortedIds(const std::unordered_set<Id> &Set) {
  std::vector<uint32_t> Out(Set.begin(), Set.end());
  std::sort(Out.begin(), Out.end());
  return Out;
}

void writeDescriptor(ByteWriter &W, const DataDescriptor &D) {
  W.u32(D.Object);
  W.words(D.Indices);
}

bool readDescriptor(ByteReader &R, DataDescriptor &D) {
  return R.u32(D.Object) && R.words(D.Indices);
}

} // namespace

void spvfuzz::writeFactsBinary(ByteWriter &W, const FactManager &Facts) {
  W.words(sortedIds(Facts.deadBlocks()));
  W.words(sortedIds(Facts.irrelevantIds()));
  W.words(sortedIds(Facts.irrelevantPointees()));
  W.words(sortedIds(Facts.liveSafeFunctions()));
  auto Synonyms = Facts.canonicalSynonyms();
  W.u32(static_cast<uint32_t>(Synonyms.size()));
  for (const auto &[Member, Representative] : Synonyms) {
    writeDescriptor(W, Member);
    writeDescriptor(W, Representative);
  }
  writeShaderInputBinary(W, Facts.knownInput());
}

bool spvfuzz::readFactsBinary(ByteReader &R, FactManager &Facts) {
  Facts = FactManager();
  std::vector<uint32_t> Ids;
  if (!R.words(Ids))
    return false;
  for (uint32_t TheId : Ids)
    Facts.addDeadBlock(TheId);
  if (!R.words(Ids))
    return false;
  for (uint32_t TheId : Ids)
    Facts.addIrrelevantId(TheId);
  if (!R.words(Ids))
    return false;
  for (uint32_t TheId : Ids)
    Facts.addIrrelevantPointee(TheId);
  if (!R.words(Ids))
    return false;
  for (uint32_t TheId : Ids)
    Facts.addLiveSafeFunction(TheId);
  uint32_t SynonymCount = 0;
  // Each pair is at least two descriptors of 8 bytes each.
  if (!R.u32(SynonymCount) || !R.checkCount(SynonymCount, 16))
    return false;
  for (uint32_t I = 0; I < SynonymCount; ++I) {
    DataDescriptor Member, Representative;
    if (!readDescriptor(R, Member) || !readDescriptor(R, Representative))
      return false;
    Facts.addSynonym(Member, Representative);
  }
  ShaderInput Input;
  if (!readShaderInputBinary(R, Input))
    return false;
  Facts.setKnownInput(Input);
  return true;
}
