//===- store/CampaignStore.cpp - Persistent campaign store -----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "store/CampaignStore.h"

#include "ir/Text.h"
#include "store/Serde.h"
#include "support/ModuleHash.h"
#include "triage/Triage.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>

using namespace spvfuzz;

//===----------------------------------------------------------------------===//
// Small filesystem and naming helpers
//===----------------------------------------------------------------------===//

namespace {

bool ensureDir(const std::string &Path, std::string &ErrorOut) {
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST)
    return true;
  ErrorOut = "cannot create directory " + Path + ": " + strerror(errno);
  return false;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

size_t fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? static_cast<size_t>(St.st_size) : 0;
}

/// Sorted names of regular entries in \p Dir with suffix \p Suffix ("" for
/// all).
std::vector<std::string> listDir(const std::string &Dir,
                                 const std::string &Suffix) {
  std::vector<std::string> Names;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Names;
  while (struct dirent *Entry = ::readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name == "." || Name == "..")
      continue;
    if (Name.size() < Suffix.size() ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    Names.push_back(std::move(Name));
  }
  ::closedir(D);
  std::sort(Names.begin(), Names.end());
  return Names;
}

uint64_t hashString(const std::string &S) {
  StructuralHasher H;
  H.word(S.size());
  for (char C : S)
    H.word(static_cast<uint8_t>(C));
  return H.digest();
}

std::string hexDigits(uint64_t Value, size_t Digits) {
  static const char *Hex = "0123456789abcdef";
  std::string Out(Digits, '0');
  for (size_t I = Digits; I-- > 0; Value >>= 4)
    Out[I] = Hex[Value & 0xF];
  return Out;
}

/// Filesystem-safe rendering of a target name.
std::string sanitizeName(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (isalnum(static_cast<unsigned char>(C)) || C == '-' || C == '_')
               ? C
               : '-';
  return Out.empty() ? std::string("unnamed") : Out;
}

std::string typesKeyOf(const std::set<TransformationKind> &Types) {
  // Canonical rendering shared with the ground-truth scorer, so the types
  // dedup axis means the same thing in buckets and in scores.
  return triage::dedupTypesKey(Types);
}

std::string bucketDirName(const std::string &Target,
                          const std::string &Signature,
                          const std::string &TypesKey) {
  return sanitizeName(Target) + "_" + hexDigits(hashString(Signature), 8) +
         "_" + hexDigits(hashString(TypesKey), 8);
}

void jsonEscapeInto(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\', Out += C;
    else if (C == '\n')
      Out += "\\n";
    else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else
      Out += C;
  }
  Out += '"';
}

bool copyFile(const std::string &From, const std::string &To,
              std::string &ErrorOut) {
  std::string Bytes;
  return readFileBytes(From, Bytes, ErrorOut) &&
         atomicWriteFile(To, Bytes, ErrorOut);
}

//===----------------------------------------------------------------------===//
// Checkpoint payload codecs
//===----------------------------------------------------------------------===//

void writeBreakers(ByteWriter &W,
                   const std::map<std::string, Harness::BreakerState> &B) {
  W.u32(static_cast<uint32_t>(B.size()));
  for (const auto &[Name, State] : B) {
    W.str(Name);
    W.u32(State.ConsecutiveToolErrors);
    W.u8(State.Open ? 1 : 0);
  }
}

bool readBreakers(ByteReader &R,
                  std::map<std::string, Harness::BreakerState> &Out) {
  Out.clear();
  uint32_t Count = 0;
  if (!R.u32(Count) || !R.checkCount(Count, 9))
    return false;
  for (uint32_t I = 0; I < Count; ++I) {
    std::string Name;
    Harness::BreakerState State;
    uint8_t Open = 0;
    if (!R.str(Name) || !R.u32(State.ConsecutiveToolErrors) || !R.u8(Open))
      return false;
    State.Open = Open != 0;
    Out[std::move(Name)] = State;
  }
  return true;
}

void writeEvaluationPayload(ByteWriter &W, const EvaluationCheckpoint &C) {
  W.u64(C.NextWave);
  W.u8(C.Complete ? 1 : 0);
  W.u32(static_cast<uint32_t>(C.Evals.size()));
  for (const TestEvaluation &Eval : C.Evals)
    writeTestEvaluationBinary(W, Eval);
  writeBreakers(W, C.Breakers);
}

bool readEvaluationPayload(ByteReader &R, EvaluationCheckpoint &C) {
  uint64_t NextWave = 0;
  uint8_t Complete = 0;
  uint32_t EvalCount = 0;
  if (!R.u64(NextWave) || !R.u8(Complete) || !R.u32(EvalCount) ||
      !R.checkCount(EvalCount, 24))
    return false;
  C.NextWave = static_cast<size_t>(NextWave);
  C.Complete = Complete != 0;
  C.Evals.clear();
  C.Evals.reserve(EvalCount);
  for (uint32_t I = 0; I < EvalCount; ++I) {
    TestEvaluation Eval;
    if (!readTestEvaluationBinary(R, Eval))
      return false;
    C.Evals.push_back(std::move(Eval));
  }
  return readBreakers(R, C.Breakers);
}

void writeRecord(ByteWriter &W, const ReductionRecord &Record) {
  W.str(Record.Tool);
  W.str(Record.TargetName);
  W.str(Record.Signature);
  W.u64(Record.TestIndex);
  W.u64(Record.OriginalCount);
  W.u64(Record.UnreducedCount);
  W.u64(Record.ReducedCount);
  W.u64(Record.MinimizedLength);
  W.u64(Record.Checks);
  W.u64(Record.SpeculativeChecks);
  W.u32(static_cast<uint32_t>(Record.Types.size()));
  for (TransformationKind Kind : Record.Types)
    W.u16(static_cast<uint16_t>(Kind));
  W.u32(static_cast<uint32_t>(Record.PostStats.size()));
  for (const PostReducePassStats &Stat : Record.PostStats) {
    W.str(Stat.Pass);
    W.u64(Stat.Attempted);
    W.u64(Stat.Accepted);
    W.u64(Stat.Checks);
  }
}

bool readRecord(ByteReader &R, ReductionRecord &Record, uint32_t Version) {
  uint64_t TestIndex = 0, Original = 0, Unreduced = 0, Reduced = 0,
           Minimized = 0, Checks = 0, Speculative = 0;
  uint32_t TypeCount = 0;
  if (!R.str(Record.Tool) || !R.str(Record.TargetName) ||
      !R.str(Record.Signature) || !R.u64(TestIndex) || !R.u64(Original) ||
      !R.u64(Unreduced) || !R.u64(Reduced) || !R.u64(Minimized) ||
      !R.u64(Checks) || !R.u64(Speculative) || !R.u32(TypeCount) ||
      !R.checkCount(TypeCount, 2))
    return false;
  Record.TestIndex = static_cast<size_t>(TestIndex);
  Record.OriginalCount = static_cast<size_t>(Original);
  Record.UnreducedCount = static_cast<size_t>(Unreduced);
  Record.ReducedCount = static_cast<size_t>(Reduced);
  Record.MinimizedLength = static_cast<size_t>(Minimized);
  Record.Checks = static_cast<size_t>(Checks);
  Record.SpeculativeChecks = static_cast<size_t>(Speculative);
  Record.Types.clear();
  for (uint32_t I = 0; I < TypeCount; ++I) {
    uint16_t Kind = 0;
    if (!R.u16(Kind))
      return false;
    if (Kind >= NumTransformationKinds)
      return R.failAt("unknown transformation kind " + std::to_string(Kind));
    Record.Types.insert(static_cast<TransformationKind>(Kind));
  }
  Record.PostStats.clear();
  if (Version >= 2) {
    uint32_t PostCount = 0;
    if (!R.u32(PostCount) || !R.checkCount(PostCount, 28))
      return false;
    Record.PostStats.reserve(PostCount);
    for (uint32_t I = 0; I < PostCount; ++I) {
      PostReducePassStats Stat;
      uint64_t Attempted = 0, Accepted = 0, Checks = 0;
      if (!R.str(Stat.Pass) || !R.u64(Attempted) || !R.u64(Accepted) ||
          !R.u64(Checks))
        return false;
      Stat.Attempted = static_cast<size_t>(Attempted);
      Stat.Accepted = static_cast<size_t>(Accepted);
      Stat.Checks = static_cast<size_t>(Checks);
      Record.PostStats.push_back(std::move(Stat));
    }
  }
  return true;
}

void writeReductionPayload(ByteWriter &W, const ReductionCheckpoint &C) {
  W.u64(C.NextWave);
  W.u8(C.Complete ? 1 : 0);
  W.u64(C.ReductionsDone);
  W.u32(static_cast<uint32_t>(C.SignatureCounts.size()));
  for (const auto &[Key, Count] : C.SignatureCounts) {
    W.str(Key.first);
    W.str(Key.second);
    W.u64(Count);
  }
  W.u32(static_cast<uint32_t>(C.Records.size()));
  for (const ReductionRecord &Record : C.Records)
    writeRecord(W, Record);
  writeBreakers(W, C.Breakers);
}

bool readReductionPayload(ByteReader &R, ReductionCheckpoint &C,
                          uint32_t Version) {
  uint64_t NextWave = 0, Done = 0;
  uint8_t Complete = 0;
  uint32_t SigCount = 0;
  if (!R.u64(NextWave) || !R.u8(Complete) || !R.u64(Done) ||
      !R.u32(SigCount) || !R.checkCount(SigCount, 16))
    return false;
  C.NextWave = static_cast<size_t>(NextWave);
  C.Complete = Complete != 0;
  C.ReductionsDone = static_cast<size_t>(Done);
  C.SignatureCounts.clear();
  for (uint32_t I = 0; I < SigCount; ++I) {
    std::string Target, Signature;
    uint64_t Count = 0;
    if (!R.str(Target) || !R.str(Signature) || !R.u64(Count))
      return false;
    C.SignatureCounts[{std::move(Target), std::move(Signature)}] =
        static_cast<size_t>(Count);
  }
  uint32_t RecordCount = 0;
  if (!R.u32(RecordCount) || !R.checkCount(RecordCount, 60))
    return false;
  C.Records.clear();
  C.Records.reserve(RecordCount);
  for (uint32_t I = 0; I < RecordCount; ++I) {
    ReductionRecord Record;
    if (!readRecord(R, Record, Version))
      return false;
    C.Records.push_back(std::move(Record));
  }
  return readBreakers(R, C.Breakers);
}

//===----------------------------------------------------------------------===//
// Manifest codec
//===----------------------------------------------------------------------===//

std::string encodeManifest(const StoreManifest &Manifest) {
  ByteWriter W;
  W.u32(static_cast<uint32_t>(Manifest.Campaigns.size()));
  for (const CampaignEntry &Campaign : Manifest.Campaigns) {
    W.str(Campaign.Id);
    W.str(Campaign.ConfigDigest);
    W.u32(static_cast<uint32_t>(Campaign.Buckets.size()));
    for (const BugBucket &Bucket : Campaign.Buckets) {
      W.str(Bucket.Target);
      W.str(Bucket.Signature);
      W.str(Bucket.TypesKey);
      W.str(Bucket.Dir);
      W.u64(Bucket.Count);
    }
  }
  StoreFile File;
  File.add("MNFT", W.take());
  return File.encode();
}

bool decodeManifest(const std::string &Bytes, StoreManifest &Manifest,
                    std::string &ErrorOut) {
  StoreFile File;
  if (!StoreFile::decode(Bytes, File, ErrorOut))
    return false;
  const std::string *Payload = File.find("MNFT");
  if (!Payload) {
    ErrorOut = "manifest has no MNFT section";
    return false;
  }
  ByteReader R(*Payload);
  uint32_t CampaignCount = 0;
  if (!R.u32(CampaignCount) || !R.checkCount(CampaignCount, 12)) {
    ErrorOut = "corrupt manifest: " + R.error();
    return false;
  }
  Manifest.Campaigns.clear();
  for (uint32_t I = 0; I < CampaignCount; ++I) {
    CampaignEntry Campaign;
    uint32_t BucketCount = 0;
    if (!R.str(Campaign.Id) || !R.str(Campaign.ConfigDigest) ||
        !R.u32(BucketCount) || !R.checkCount(BucketCount, 24)) {
      ErrorOut = "corrupt manifest: " + R.error();
      return false;
    }
    for (uint32_t B = 0; B < BucketCount; ++B) {
      BugBucket Bucket;
      if (!R.str(Bucket.Target) || !R.str(Bucket.Signature) ||
          !R.str(Bucket.TypesKey) || !R.str(Bucket.Dir) ||
          !R.u64(Bucket.Count)) {
        ErrorOut = "corrupt manifest: " + R.error();
        return false;
      }
      Campaign.Buckets.push_back(std::move(Bucket));
    }
    Manifest.Campaigns.push_back(std::move(Campaign));
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// StoreManifest / campaign identity
//===----------------------------------------------------------------------===//

CampaignEntry *StoreManifest::find(const std::string &Id) {
  for (CampaignEntry &Campaign : Campaigns)
    if (Campaign.Id == Id)
      return &Campaign;
  return nullptr;
}

const CampaignEntry *StoreManifest::find(const std::string &Id) const {
  return const_cast<StoreManifest *>(this)->find(Id);
}

std::string spvfuzz::campaignConfigDigest(const ExecutionPolicy &Policy) {
  StructuralHasher H;
  H.word(Policy.Seed);
  H.word(Policy.TransformationLimit);
  H.word(Policy.TargetDeadlineSteps);
  H.word(Policy.FlakyRetries);
  H.word(Policy.QuarantineThreshold);
  // Reduction-pipeline knobs change reduction results, so they are part
  // of the campaign identity — but only when non-default, so digests of
  // paper-order campaigns are stable across versions.
  if (Policy.ReduceOrder != CandidateOrder::Paper)
    H.word(static_cast<uint64_t>(Policy.ReduceOrder) + 1);
  if (Policy.PostReduce) {
    H.word(0x706f7374u); // "post"
    for (const std::string &Pass : Policy.PostReducePasses)
      H.word(hashString(Pass));
  }
  return hexDigits(H.digest(), 16);
}

std::string spvfuzz::campaignIdFor(const ExecutionPolicy &Policy) {
  return "seed" + std::to_string(Policy.Seed) + "-" +
         campaignConfigDigest(Policy);
}

//===----------------------------------------------------------------------===//
// Open
//===----------------------------------------------------------------------===//

std::unique_ptr<CampaignStore>
CampaignStore::open(const std::string &Dir, const ExecutionPolicy &Policy,
                    std::string &ErrorOut) {
  std::unique_ptr<CampaignStore> Store(new CampaignStore());
  Store->Root = Dir;
  Store->CampaignId = campaignIdFor(Policy);
  Store->ConfigDigest = campaignConfigDigest(Policy);

  for (const char *Sub : {"", "/checkpoint", "/bugs", "/corpus", "/journal"})
    if (!ensureDir(Dir + Sub, ErrorOut))
      return nullptr;

  const std::string ManifestPath = Dir + "/checkpoint/manifest.bin";
  if (fileExists(ManifestPath)) {
    std::string Bytes;
    if (!readFileBytes(ManifestPath, Bytes, ErrorOut) ||
        !decodeManifest(Bytes, Store->Manifest, ErrorOut))
      return nullptr;
  }

  const CampaignEntry *Existing = Store->Manifest.find(Store->CampaignId);
  if (Existing && !Policy.Resume) {
    ErrorOut = "store already records campaign " + Store->CampaignId +
               "; pass --resume to continue it (or use a different seed to "
               "accumulate a new campaign)";
    return nullptr;
  }
  if (Existing && Existing->ConfigDigest != Store->ConfigDigest) {
    ErrorOut = "config digest mismatch for campaign " + Store->CampaignId;
    return nullptr;
  }

  // Reload this campaign's reduction records from its checkpoints so
  // bucket counts survive reopen even before the next save.
  for (const std::string &Name : listDir(Dir + "/checkpoint", ".ckpt")) {
    std::string Bytes, Error;
    if (!readFileBytes(Dir + "/checkpoint/" + Name, Bytes, Error))
      continue;
    StoreFile File;
    if (!StoreFile::decode(Bytes, File, Error))
      continue;
    const std::string *Campaign = File.find("CAMP");
    const std::string *Phase = File.find("PHSE");
    const std::string *Payload = File.find("REDU");
    if (!Campaign || !Phase || !Payload || *Campaign != Store->CampaignId)
      continue;
    ByteReader R(*Payload);
    ReductionCheckpoint C;
    if (readReductionPayload(R, C, File.Version))
      Store->PhaseRecords[*Phase] = std::move(C.Records);
  }
  return Store;
}

std::unique_ptr<CampaignStore>
CampaignStore::openForTools(const std::string &Dir, std::string &ErrorOut) {
  std::unique_ptr<CampaignStore> Store(new CampaignStore());
  Store->Root = Dir;
  const std::string ManifestPath = Dir + "/checkpoint/manifest.bin";
  if (!fileExists(ManifestPath)) {
    ErrorOut = Dir + " is not a campaign store (no checkpoint/manifest.bin)";
    return nullptr;
  }
  std::string Bytes;
  if (!readFileBytes(ManifestPath, Bytes, ErrorOut) ||
      !decodeManifest(Bytes, Store->Manifest, ErrorOut))
    return nullptr;
  return Store;
}

//===----------------------------------------------------------------------===//
// Checkpoints
//===----------------------------------------------------------------------===//

bool CampaignStore::loadCheckpointFile(const std::string &Phase,
                                       const char *SectionTag,
                                       std::string &PayloadOut,
                                       uint32_t &VersionOut) {
  const std::string Path =
      Root + "/checkpoint/" +
      hexDigits(hashString(CampaignId + "\n" + Phase), 16) + ".ckpt";
  std::string Bytes, Error;
  if (!fileExists(Path) || !readFileBytes(Path, Bytes, Error))
    return false;
  StoreFile File;
  if (!StoreFile::decode(Bytes, File, Error)) {
    fprintf(stderr, "store: ignoring corrupt checkpoint %s: %s\n",
            Path.c_str(), Error.c_str());
    return false;
  }
  const std::string *Campaign = File.find("CAMP");
  const std::string *Stored = File.find("PHSE");
  const std::string *Payload = File.find(SectionTag);
  if (!Campaign || !Stored || !Payload || *Campaign != CampaignId ||
      *Stored != Phase)
    return false;
  PayloadOut = *Payload;
  VersionOut = File.Version;
  return true;
}

void CampaignStore::saveCheckpointFile(const std::string &Phase,
                                       const char *SectionTag,
                                       std::string Payload) {
  StoreFile File;
  File.add("CAMP", CampaignId);
  File.add("PHSE", Phase);
  File.add(SectionTag, std::move(Payload));
  const std::string Path =
      Root + "/checkpoint/" +
      hexDigits(hashString(CampaignId + "\n" + Phase), 16) + ".ckpt";
  std::string Error;
  if (!atomicWriteFile(Path, File.encode(), Error))
    fprintf(stderr, "store: checkpoint write failed: %s\n", Error.c_str());
}

bool CampaignStore::loadEvaluation(const std::string &Phase,
                                   EvaluationCheckpoint &Out) {
  std::string Payload;
  uint32_t Version = 0;
  if (!loadCheckpointFile(Phase, "EVAL", Payload, Version))
    return false;
  ByteReader R(Payload);
  EvaluationCheckpoint C;
  if (!readEvaluationPayload(R, C)) {
    fprintf(stderr, "store: ignoring corrupt evaluation checkpoint (%s)\n",
            R.error().c_str());
    return false;
  }
  C.Phase = Phase;
  Out = std::move(C);
  return true;
}

void CampaignStore::saveEvaluation(const EvaluationCheckpoint &Checkpoint) {
  ByteWriter W;
  writeEvaluationPayload(W, Checkpoint);
  saveCheckpointFile(Checkpoint.Phase, "EVAL", W.take());
  commitManifest();
}

bool CampaignStore::loadReduction(const std::string &Phase,
                                  ReductionCheckpoint &Out) {
  std::string Payload;
  uint32_t Version = 0;
  if (!loadCheckpointFile(Phase, "REDU", Payload, Version))
    return false;
  ByteReader R(Payload);
  ReductionCheckpoint C;
  if (!readReductionPayload(R, C, Version)) {
    fprintf(stderr, "store: ignoring corrupt reduction checkpoint (%s)\n",
            R.error().c_str());
    return false;
  }
  C.Phase = Phase;
  Out = std::move(C);
  return true;
}

void CampaignStore::saveReduction(const ReductionCheckpoint &Checkpoint) {
  ByteWriter W;
  writeReductionPayload(W, Checkpoint);
  saveCheckpointFile(Checkpoint.Phase, "REDU", W.take());
  PhaseRecords[Checkpoint.Phase] = Checkpoint.Records;
  commitManifest();
}

//===----------------------------------------------------------------------===//
// Reproducers
//===----------------------------------------------------------------------===//

void CampaignStore::recordReproducer(const ReductionRecord &Record,
                                     const Module &Original,
                                     const ShaderInput &Input,
                                     const Module &Reduced,
                                     const TransformationSequence &Minimized) {
  const std::string TypesKey = typesKeyOf(Record.Types);
  const std::string BucketDir =
      bucketDirName(Record.TargetName, Record.Signature, TypesKey);
  const std::string BucketPath = Root + "/bugs/" + BucketDir;
  std::string Error;
  if (!ensureDir(BucketPath, Error)) {
    fprintf(stderr, "store: %s\n", Error.c_str());
    return;
  }

  // The bucket keeps its first reproducer as the representative; later
  // hits only raise the manifest count.
  if (!fileExists(BucketPath + "/repro.msb")) {
    ByteWriter OrigW, InputW, ReducedW, SeqW;
    writeModuleBinary(OrigW, Original);
    writeShaderInputBinary(InputW, Input);
    writeModuleBinary(ReducedW, Reduced);
    writeSequenceBinary(SeqW, Minimized);
    StoreFile Repro;
    Repro.add("ORIG", OrigW.take());
    Repro.add("INPT", InputW.take());
    Repro.add("REDU", ReducedW.take());
    Repro.add("SEQN", SeqW.take());

    std::string Meta = "{\n  \"tool\": ";
    jsonEscapeInto(Meta, Record.Tool);
    Meta += ",\n  \"target\": ";
    jsonEscapeInto(Meta, Record.TargetName);
    Meta += ",\n  \"signature\": ";
    jsonEscapeInto(Meta, Record.Signature);
    Meta += ",\n  \"types\": ";
    jsonEscapeInto(Meta, TypesKey);
    Meta += ",\n  \"testIndex\": " + std::to_string(Record.TestIndex);
    Meta += ",\n  \"originalCount\": " + std::to_string(Record.OriginalCount);
    Meta +=
        ",\n  \"unreducedCount\": " + std::to_string(Record.UnreducedCount);
    Meta += ",\n  \"reducedCount\": " + std::to_string(Record.ReducedCount);
    Meta +=
        ",\n  \"minimizedLength\": " + std::to_string(Record.MinimizedLength);
    Meta += "\n}\n";

    bool Ok = atomicWriteFile(BucketPath + "/repro.msb", Repro.encode(),
                              Error) &&
              atomicWriteFile(BucketPath + "/repro.txt",
                              writeModuleText(Reduced), Error) &&
              atomicWriteFile(BucketPath + "/delta.diff",
                              diffModuleText(Original, Reduced), Error) &&
              atomicWriteFile(BucketPath + "/meta.json", Meta, Error);
    if (!Ok)
      fprintf(stderr, "store: reproducer write failed: %s\n", Error.c_str());
  }

  // Corpus entry: the reduced reproducer, gc'able bulk storage.
  ByteWriter ReducedW, InputW;
  writeModuleBinary(ReducedW, Reduced);
  writeShaderInputBinary(InputW, Input);
  StoreFile Entry;
  Entry.add("REDU", ReducedW.take());
  Entry.add("INPT", InputW.take());
  const std::string CorpusName = CampaignId + "-" + sanitizeName(Record.Tool) +
                                 "-t" + std::to_string(Record.TestIndex) +
                                 "-" + sanitizeName(Record.TargetName) +
                                 ".msb";
  if (!atomicWriteFile(Root + "/corpus/" + CorpusName, Entry.encode(), Error))
    fprintf(stderr, "store: corpus write failed: %s\n", Error.c_str());
}

bool CampaignStore::loadReproducer(const BugBucket &Bucket, Module &OriginalOut,
                                   ShaderInput &InputOut, Module &ReducedOut,
                                   TransformationSequence &MinimizedOut,
                                   std::string &ErrorOut) const {
  const std::string Path = Root + "/bugs/" + Bucket.Dir + "/repro.msb";
  std::string Bytes;
  StoreFile Repro;
  if (!readFileBytes(Path, Bytes, ErrorOut) ||
      !StoreFile::decode(Bytes, Repro, ErrorOut))
    return false;
  const std::string *Orig = Repro.find("ORIG");
  const std::string *Input = Repro.find("INPT");
  const std::string *Reduced = Repro.find("REDU");
  const std::string *Sequence = Repro.find("SEQN");
  if (!Orig || !Input || !Reduced || !Sequence) {
    ErrorOut = Path + ": missing reproducer section";
    return false;
  }
  ByteReader OrigR(*Orig), InputR(*Input), ReducedR(*Reduced),
      SequenceR(*Sequence);
  if (!readModuleBinary(OrigR, OriginalOut) ||
      !readShaderInputBinary(InputR, InputOut) ||
      !readModuleBinary(ReducedR, ReducedOut) ||
      !readSequenceBinary(SequenceR, MinimizedOut)) {
    ErrorOut = Path + ": reproducer payload failed to decode";
    return false;
  }
  return true;
}

bool CampaignStore::recordAttribution(const BugBucket &Bucket,
                                      const triage::BugAttribution &Attr,
                                      std::string &ErrorOut) {
  const std::string BucketPath = Root + "/bugs/" + Bucket.Dir;
  std::string Bytes;
  StoreFile Repro;
  if (!readFileBytes(BucketPath + "/repro.msb", Bytes, ErrorOut) ||
      !StoreFile::decode(Bytes, Repro, ErrorOut))
    return false;

  // Rebuild the container at the current version with every non-ATTR
  // section preserved and the new ATTR appended (replacing any previous
  // attribution: triage re-runs are idempotent).
  StoreFile Updated;
  for (const auto &[Tag, Payload] : Repro.Sections)
    if (Tag != "ATTR")
      Updated.add(Tag, Payload);
  ByteWriter AttrW;
  triage::writeAttributionBinary(AttrW, Attr);
  Updated.add("ATTR", AttrW.take());
  if (!atomicWriteFile(BucketPath + "/repro.msb", Updated.encode(), ErrorOut))
    return false;

  // Mirror into meta.json under an "attribution" key. The key is always
  // the final member, so a re-run truncates at its marker and re-appends.
  std::string Meta;
  if (readFileBytes(BucketPath + "/meta.json", Meta, ErrorOut)) {
    const std::string Marker = ",\n  \"attribution\": ";
    if (size_t Pos = Meta.find(Marker); Pos != std::string::npos)
      Meta.resize(Pos);
    else if (size_t End = Meta.rfind("\n}"); End != std::string::npos)
      Meta.resize(End);
    Meta += ",\n  \"attribution\": " + triage::attributionJson(Attr) + "\n}\n";
    if (!atomicWriteFile(BucketPath + "/meta.json", Meta, ErrorOut))
      return false;
  }
  ErrorOut.clear();
  return true;
}

bool CampaignStore::loadAttribution(const BugBucket &Bucket,
                                    triage::BugAttribution &Out) const {
  std::string Bytes, Error;
  StoreFile Repro;
  if (!readFileBytes(Root + "/bugs/" + Bucket.Dir + "/repro.msb", Bytes,
                     Error) ||
      !StoreFile::decode(Bytes, Repro, Error))
    return false;
  const std::string *Attr = Repro.find("ATTR");
  if (!Attr)
    return false;
  ByteReader R(*Attr);
  return triage::readAttributionBinary(R, Out);
}

//===----------------------------------------------------------------------===//
// Manifest commit
//===----------------------------------------------------------------------===//

void CampaignStore::commitManifest() {
  // Rebuild this campaign's buckets from every reduction record in its
  // checkpoints — idempotent under checkpoint replay, so a resumed run
  // never double-counts.
  std::map<std::tuple<std::string, std::string, std::string>, uint64_t>
      Counts;
  for (const auto &[Phase, Records] : PhaseRecords) {
    (void)Phase;
    for (const ReductionRecord &Record : Records)
      ++Counts[{Record.TargetName, Record.Signature,
                typesKeyOf(Record.Types)}];
  }
  CampaignEntry *Entry = Manifest.find(CampaignId);
  if (!Entry) {
    Manifest.Campaigns.push_back(CampaignEntry{CampaignId, ConfigDigest, {}});
    Entry = &Manifest.Campaigns.back();
  }
  Entry->Buckets.clear();
  for (const auto &[Key, Count] : Counts) {
    const auto &[Target, Signature, TypesKey] = Key;
    BugBucket Bucket;
    Bucket.Target = Target;
    Bucket.Signature = Signature;
    Bucket.TypesKey = TypesKey;
    Bucket.Dir = bucketDirName(Target, Signature, TypesKey);
    Bucket.Count = Count;
    Entry->Buckets.push_back(std::move(Bucket));
  }

  std::string Error;
  if (!atomicWriteFile(Root + "/checkpoint/manifest.bin",
                       encodeManifest(Manifest), Error))
    fprintf(stderr, "store: manifest write failed: %s\n", Error.c_str());
  writeManifestMirror();

  // Telemetry at this commit point, for resume merging and report --store.
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (Metrics.enabled() &&
      !atomicWriteFile(Root + "/checkpoint/metrics.json",
                       telemetry::metricsToJson(Metrics.snapshot()), Error))
    fprintf(stderr, "store: metrics write failed: %s\n", Error.c_str());
}

void CampaignStore::writeManifestMirror() const {
  std::string Json = "{\n  \"version\": " + std::to_string(StoreFormatVersion);
  Json += ",\n  \"campaigns\": [";
  for (size_t I = 0; I < Manifest.Campaigns.size(); ++I) {
    const CampaignEntry &Campaign = Manifest.Campaigns[I];
    Json += I ? ",\n    {" : "\n    {";
    Json += "\"id\": ";
    jsonEscapeInto(Json, Campaign.Id);
    Json += ", \"digest\": ";
    jsonEscapeInto(Json, Campaign.ConfigDigest);
    Json += ", \"buckets\": [";
    for (size_t B = 0; B < Campaign.Buckets.size(); ++B) {
      const BugBucket &Bucket = Campaign.Buckets[B];
      Json += B ? ",\n      {" : "\n      {";
      Json += "\"target\": ";
      jsonEscapeInto(Json, Bucket.Target);
      Json += ", \"signature\": ";
      jsonEscapeInto(Json, Bucket.Signature);
      Json += ", \"types\": ";
      jsonEscapeInto(Json, Bucket.TypesKey);
      Json += ", \"dir\": ";
      jsonEscapeInto(Json, Bucket.Dir);
      Json += ", \"count\": " + std::to_string(Bucket.Count) + "}";
    }
    Json += Campaign.Buckets.empty() ? "]}" : "\n    ]}";
  }
  Json += Manifest.Campaigns.empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::string Error;
  if (!atomicWriteFile(Root + "/MANIFEST.json", Json, Error))
    fprintf(stderr, "store: MANIFEST.json write failed: %s\n", Error.c_str());
}

//===----------------------------------------------------------------------===//
// Triage operations
//===----------------------------------------------------------------------===//

std::vector<BugBucket> CampaignStore::aggregatedBuckets() const {
  std::map<std::tuple<std::string, std::string, std::string>, BugBucket>
      Merged;
  for (const CampaignEntry &Campaign : Manifest.Campaigns) {
    for (const BugBucket &Bucket : Campaign.Buckets) {
      BugBucket &Slot =
          Merged[{Bucket.Target, Bucket.Signature, Bucket.TypesKey}];
      if (Slot.Count == 0) {
        Slot = Bucket;
        continue;
      }
      Slot.Count += Bucket.Count;
    }
  }
  std::vector<BugBucket> Out;
  Out.reserve(Merged.size());
  for (auto &[Key, Bucket] : Merged) {
    (void)Key;
    Out.push_back(std::move(Bucket));
  }
  return Out;
}

bool CampaignStore::merge(const CampaignStore &Other, std::string &ErrorOut) {
  for (const CampaignEntry &Campaign : Other.Manifest.Campaigns) {
    if (Manifest.find(Campaign.Id))
      continue; // same campaign, same buckets — nothing new
    Manifest.Campaigns.push_back(Campaign);
    for (const BugBucket &Bucket : Campaign.Buckets) {
      const std::string From = Other.Root + "/bugs/" + Bucket.Dir;
      const std::string To = Root + "/bugs/" + Bucket.Dir;
      if (fileExists(To + "/repro.msb"))
        continue; // bucket already has a representative here
      if (!ensureDir(To, ErrorOut))
        return false;
      for (const std::string &Name : listDir(From, ""))
        if (!copyFile(From + "/" + Name, To + "/" + Name, ErrorOut))
          return false;
    }
    for (const std::string &Name : listDir(Other.Root + "/corpus", ".msb"))
      if (Name.compare(0, Campaign.Id.size() + 1, Campaign.Id + "-") == 0 &&
          !fileExists(Root + "/corpus/" + Name) &&
          !copyFile(Other.Root + "/corpus/" + Name, Root + "/corpus/" + Name,
                    ErrorOut))
        return false;
  }
  return commitMergedManifest(ErrorOut);
}

bool CampaignStore::mergeFromDirectory(const std::string &Dir,
                                       size_t &MergedOut, size_t &SkippedOut,
                                       std::string &ErrorOut) {
  MergedOut = 0;
  SkippedOut = 0;
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    ErrorOut = "cannot open directory " + Dir + ": " + strerror(errno);
    return false;
  }
  std::vector<std::string> Names;
  while (struct dirent *Entry = ::readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name == "." || Name == "..")
      continue;
    struct stat St;
    if (::stat((Dir + "/" + Name).c_str(), &St) == 0 && S_ISDIR(St.st_mode))
      Names.push_back(std::move(Name));
  }
  ::closedir(D);
  std::sort(Names.begin(), Names.end());
  for (const std::string &Name : Names) {
    const std::string Sub = Dir + "/" + Name;
    if (Sub == Root || !fileExists(Sub + "/checkpoint/manifest.bin")) {
      ++SkippedOut;
      continue;
    }
    std::string OpenError;
    std::unique_ptr<CampaignStore> Source = openForTools(Sub, OpenError);
    if (!Source) {
      ++SkippedOut;
      continue;
    }
    if (!merge(*Source, ErrorOut))
      return false;
    ++MergedOut;
  }
  return true;
}

bool CampaignStore::commitMergedManifest(std::string &ErrorOut) {
  if (!atomicWriteFile(Root + "/checkpoint/manifest.bin",
                       encodeManifest(Manifest), ErrorOut))
    return false;
  writeManifestMirror();
  return true;
}

std::vector<std::string> CampaignStore::corpusFiles() const {
  return listDir(Root + "/corpus", ".msb");
}

size_t CampaignStore::corpusBytes() const {
  size_t Total = 0;
  for (const std::string &Name : corpusFiles())
    Total += fileSize(Root + "/corpus/" + Name);
  return Total;
}

size_t CampaignStore::gc(size_t BudgetBytes) {
  std::vector<std::string> Files = corpusFiles();
  std::vector<size_t> Sizes;
  size_t Total = 0;
  for (const std::string &Name : Files) {
    Sizes.push_back(fileSize(Root + "/corpus/" + Name));
    Total += Sizes.back();
  }
  size_t Removed = 0;
  // ReplayCache's farthest-first thinning: keep every other entry (the
  // later of each pair, walking from the end) until the budget fits.
  while (Total > BudgetBytes && Files.size() > 1) {
    std::vector<std::string> Kept;
    std::vector<size_t> KeptSizes;
    size_t KeptTotal = 0;
    for (size_t I = Files.size(); I-- > 0;) {
      if ((Files.size() - 1 - I) % 2 == 0) {
        KeptTotal += Sizes[I];
        Kept.push_back(std::move(Files[I]));
        KeptSizes.push_back(Sizes[I]);
      } else {
        ::remove((Root + "/corpus/" + Files[I]).c_str());
        ++Removed;
      }
    }
    std::reverse(Kept.begin(), Kept.end());
    std::reverse(KeptSizes.begin(), KeptSizes.end());
    Files = std::move(Kept);
    Sizes = std::move(KeptSizes);
    Total = KeptTotal;
  }
  if (Total > BudgetBytes && Files.size() == 1) {
    ::remove((Root + "/corpus/" + Files[0]).c_str());
    ++Removed;
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

bool CampaignStore::loadMetrics(telemetry::MetricsSnapshot &Out,
                                std::string &ErrorOut) const {
  const std::string Path = Root + "/checkpoint/metrics.json";
  std::string Bytes;
  if (!fileExists(Path)) {
    ErrorOut = "no metrics saved in " + Root;
    return false;
  }
  return readFileBytes(Path, Bytes, ErrorOut) &&
         telemetry::metricsFromJson(Bytes, Out, ErrorOut);
}

void CampaignStore::restoreMetrics() const {
  telemetry::MetricsSnapshot Snapshot;
  std::string Error;
  if (loadMetrics(Snapshot, Error))
    telemetry::MetricsRegistry::global().restore(Snapshot);
}
