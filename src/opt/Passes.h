//===- opt/Passes.h - Optimization passes (compiler under test) -*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer that plays the role of the SPIR-V compilers under test.
/// Each pass is semantics-preserving when its injected bugs are disabled
/// (verified by property tests); with bugs enabled it may crash with a
/// signature or silently miscompile, which is what the testing campaigns
/// hunt for.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_PASSES_H
#define OPT_PASSES_H

#include "opt/BugHost.h"

#include "ir/Module.h"

#include <optional>

namespace spvfuzz {

enum class OptPassKind : uint8_t {
  FrontendCheck, // diagnostics only; hosts the "frontend" crash bugs
  SimplifyCfg,
  DeadBranchElim,
  ConstantFold,
  CopyPropagation,
  LoadStoreForwarding,
  DeadStoreElim,
  Inliner,
  LocalCSE,
  PhiSimplify,
  BlockLayout,
  Dce,
};

const char *optPassName(OptPassKind Kind);

/// The outcome of one pass: nullopt, or the crash signature of an injected
/// crash bug that fired.
using PassCrash = std::optional<std::string>;

/// The pass that hosts \p Point: the only pass whose run can fire the bug.
/// This is the triage subsystem's ground truth — an attribution is correct
/// iff it names bugHostPass of the injected point behind the signature.
OptPassKind bugHostPass(BugPoint Point);

/// Maps a crash signature back to the bug point that owns it, restricted
/// to \p Bugs' enabled set (signatures are per-point, so the first match
/// is the only match). Returns false for the shared miscompilation marker,
/// the timeout/tool-error pseudo-signatures, and signatures of bugs the
/// host does not enable.
bool bugPointOfSignature(const BugHost &Bugs, const std::string &Signature,
                         BugPoint &Out);

/// Runs one pass over \p M in place.
PassCrash runOptPass(OptPassKind Kind, Module &M, const BugHost &Bugs);

/// Runs a pipeline; stops at the first crash.
PassCrash runPipeline(const std::vector<OptPassKind> &Pipeline, Module &M,
                      const BugHost &Bugs);

} // namespace spvfuzz

#endif // OPT_PASSES_H
