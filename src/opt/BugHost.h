//===- opt/BugHost.h - Injectable compiler bugs -----------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controlled ground truth for the evaluation. Real SPIR-V compilers
/// have latent bugs; our simulated targets have *injected* ones, each
/// gated on a program feature that original (generated) programs never
/// exhibit but fuzzer transformations introduce. Crash bugs abort
/// compilation with a distinct signature; miscompilation bugs silently
/// perform a wrong rewrite (all miscompilations share one bug signature
/// during detection, as in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef OPT_BUGHOST_H
#define OPT_BUGHOST_H

#include <map>
#include <set>
#include <string>

namespace spvfuzz {

/// Every injectable bug. The comment gives the trigger feature.
enum class BugPoint : uint8_t {
  // --- Crash bugs -----------------------------------------------------------
  CrashKillObstructsMerge,      // SimplifyCfg: reachable OpKill anywhere
  CrashDeadStoreToModuleScope,  // DeadBranchElim: folded-away edge reaches a
                                // block storing to a Private global
  CrashDontInlineAttribute,     // Inliner: call to a DontInline callee
  CrashCopyChainValueNumbering, // LocalCSE: CopyObject of a CopyObject
  CrashPhiManyPredecessors,     // BlockLayout: reachable phi with >= 3 pairs
  CrashCompositeFold,           // ConstantFold: extract of a construct
  CrashUnusedComposite,         // DCE: unused CompositeConstruct
  CrashPointerCopyAlias,        // Forwarding: store through a copied pointer
  CrashTrivialPhi,              // Frontend: single-entry phi
  CrashKillInCallee,            // Frontend: OpKill in a non-entry function
  CrashWideCallArity,           // Inliner: call with >= 4 arguments
  CrashEqualTargetBranch,       // DeadBranchElim: cond branch, both arms same
  CrashStoreToPrivateGlobal,    // DeadStoreElim: store to a Private global
  CrashUnusedCallResult,        // Frontend: call whose result is unused
  CrashModuleFunctionLimit,     // Frontend: module with >= 5 functions
  CrashNegatedConstantBranch,   // Frontend: branch on LogicalNot(constant)

  // --- Miscompilation bugs ----------------------------------------------------
  MiscompileUniformBranchFold, // DeadBranchElim: folds a branch on a loaded
                               // boolean uniform as if it were false
  MiscompilePhiLayoutOrder,    // BlockLayout: rebinds phi values to
                               // predecessors positionally after reordering
  MiscompileAliasBlindForward, // Forwarding: ignores intervening stores
                               // through differently-named aliasing pointers
};

/// Returns the crash signature text for a crash point.
const char *bugSignature(BugPoint Point);

/// How an injected bug manifests. The paper's fleet was not a clean lab:
/// drivers wedged (hangs), phones crashed intermittently until rebooted
/// (flaky bugs), and the evaluation explicitly distinguishes reliably
/// reproducible bugs from flaky ones. Solid is the PR-3 behaviour.
enum class BugFlavor : uint8_t {
  Solid,     ///< fires deterministically whenever triggered
  Hang,      ///< when triggered, the pipeline spins past any step budget
  Flaky,     ///< fires with seeded probability p per attempt
  FlakyHang, ///< flaky, and manifests as a hang rather than a crash
};

/// True for the flavors whose manifestation depends on the attempt draw.
inline bool isFlakyFlavor(BugFlavor F) {
  return F == BugFlavor::Flaky || F == BugFlavor::FlakyHang;
}

/// True for the flavors that manifest as a hang (timeout) when they fire.
inline bool isHangFlavor(BugFlavor F) {
  return F == BugFlavor::Hang || F == BugFlavor::FlakyHang;
}

/// The set of bugs enabled for one simulated target, each with a flavor.
class BugHost {
public:
  BugHost() = default;
  explicit BugHost(std::set<BugPoint> Enabled) : Enabled(std::move(Enabled)) {}

  bool enabled(BugPoint Point) const { return Enabled.count(Point) != 0; }
  const std::set<BugPoint> &all() const { return Enabled; }

  /// Assigns a non-Solid flavor to an (enabled) bug point.
  BugHost &withFlavor(BugPoint Point, BugFlavor F) {
    if (F == BugFlavor::Solid)
      Flavors.erase(Point);
    else
      Flavors[Point] = F;
    return *this;
  }

  BugFlavor flavor(BugPoint Point) const {
    auto It = Flavors.find(Point);
    return It == Flavors.end() ? BugFlavor::Solid : It->second;
  }

  /// True if any enabled bug has a flaky flavor — runs against such a host
  /// depend on the attempt draw and must never be memoized attempt-free.
  bool hasNondeterministic() const {
    for (BugPoint P : Enabled)
      if (isFlakyFlavor(flavor(P)))
        return true;
    return false;
  }

  /// True if any enabled bug carries a non-Solid flavor at all.
  bool hasFaultFlavors() const { return !Flavors.empty(); }

  /// Resolves the flaky draw for one attempt: returns a copy of this host
  /// with every flaky-flavored bug whose draw did not fire disabled, so the
  /// pipeline can run once with an ordinary deterministic bug set.
  /// \p Fires decides, per bug point, whether the flaky bug fires on this
  /// attempt; it must be a pure function of (seed, module, point, attempt).
  template <typename FiresPred> BugHost resolve(FiresPred Fires) const {
    BugHost Out = *this;
    for (BugPoint P : Enabled)
      if (isFlakyFlavor(flavor(P)) && !Fires(P))
        Out.Enabled.erase(P);
    return Out;
  }

  /// Maps a crash signature back to the flavor of the enabled bug that
  /// produced it (Solid if no enabled bug owns the signature — e.g. the
  /// shared miscompilation marker).
  BugFlavor flavorOfSignature(const std::string &Signature) const {
    for (BugPoint P : Enabled)
      if (Signature == bugSignature(P))
        return flavor(P);
    return BugFlavor::Solid;
  }

private:
  std::set<BugPoint> Enabled;
  /// Only non-Solid entries are stored.
  std::map<BugPoint, BugFlavor> Flavors;
};

} // namespace spvfuzz

#endif // OPT_BUGHOST_H
