//===- opt/BugHost.h - Injectable compiler bugs -----------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The controlled ground truth for the evaluation. Real SPIR-V compilers
/// have latent bugs; our simulated targets have *injected* ones, each
/// gated on a program feature that original (generated) programs never
/// exhibit but fuzzer transformations introduce. Crash bugs abort
/// compilation with a distinct signature; miscompilation bugs silently
/// perform a wrong rewrite (all miscompilations share one bug signature
/// during detection, as in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef OPT_BUGHOST_H
#define OPT_BUGHOST_H

#include <set>
#include <string>

namespace spvfuzz {

/// Every injectable bug. The comment gives the trigger feature.
enum class BugPoint : uint8_t {
  // --- Crash bugs -----------------------------------------------------------
  CrashKillObstructsMerge,      // SimplifyCfg: reachable OpKill anywhere
  CrashDeadStoreToModuleScope,  // DeadBranchElim: folded-away edge reaches a
                                // block storing to a Private global
  CrashDontInlineAttribute,     // Inliner: call to a DontInline callee
  CrashCopyChainValueNumbering, // LocalCSE: CopyObject of a CopyObject
  CrashPhiManyPredecessors,     // BlockLayout: reachable phi with >= 3 pairs
  CrashCompositeFold,           // ConstantFold: extract of a construct
  CrashUnusedComposite,         // DCE: unused CompositeConstruct
  CrashPointerCopyAlias,        // Forwarding: store through a copied pointer
  CrashTrivialPhi,              // PhiSimplify: single-entry phi
  CrashKillInCallee,            // Frontend: OpKill in a non-entry function
  CrashWideCallArity,           // Inliner: call with >= 4 arguments
  CrashEqualTargetBranch,       // DeadBranchElim: cond branch, both arms same
  CrashStoreToPrivateGlobal,    // DeadStoreElim: store to a Private global
  CrashUnusedCallResult,        // DCE: call whose result is unused
  CrashModuleFunctionLimit,     // Frontend: module with >= 5 functions
  CrashNegatedConstantBranch,   // Frontend: branch on LogicalNot(constant)

  // --- Miscompilation bugs ----------------------------------------------------
  MiscompileUniformBranchFold, // DeadBranchElim: folds a branch on a loaded
                               // boolean uniform as if it were false
  MiscompilePhiLayoutOrder,    // BlockLayout: rebinds phi values to
                               // predecessors positionally after reordering
  MiscompileAliasBlindForward, // Forwarding: ignores intervening stores
                               // through differently-named aliasing pointers
};

/// Returns the crash signature text for a crash point.
const char *bugSignature(BugPoint Point);

/// The set of bugs enabled for one simulated target.
class BugHost {
public:
  BugHost() = default;
  explicit BugHost(std::set<BugPoint> Enabled) : Enabled(std::move(Enabled)) {}

  bool enabled(BugPoint Point) const { return Enabled.count(Point) != 0; }
  const std::set<BugPoint> &all() const { return Enabled; }

private:
  std::set<BugPoint> Enabled;
};

} // namespace spvfuzz

#endif // OPT_BUGHOST_H
