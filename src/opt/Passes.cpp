//===- opt/Passes.cpp - Optimization passes (compiler under test) ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "analysis/Cfg.h"
#include "ir/ModuleBuilder.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

using namespace spvfuzz;

const char *spvfuzz::bugSignature(BugPoint Point) {
  switch (Point) {
  case BugPoint::CrashKillObstructsMerge:
    return "simplifycfg: OpKill obstructs block merging";
  case BugPoint::CrashDeadStoreToModuleScope:
    return "deadbranch: folded edge reaches module-scope store";
  case BugPoint::CrashDontInlineAttribute:
    return "inliner: unexpected DontInline attribute";
  case BugPoint::CrashCopyChainValueNumbering:
    return "cse: value numbering failed on copy chain";
  case BugPoint::CrashPhiManyPredecessors:
    return "layout: phi with too many predecessors";
  case BugPoint::CrashCompositeFold:
    return "constfold: cannot fold extract of construct";
  case BugPoint::CrashUnusedComposite:
    return "dce: unused composite construction";
  case BugPoint::CrashPointerCopyAlias:
    return "forwarding: store through copied pointer";
  case BugPoint::CrashTrivialPhi:
    return "lowering: degenerate single-entry phi";
  case BugPoint::CrashKillInCallee:
    return "frontend: OpKill in non-entry function";
  case BugPoint::CrashWideCallArity:
    return "inliner: call arity exceeds scratch registers";
  case BugPoint::CrashEqualTargetBranch:
    return "deadbranch: conditional branch with identical targets";
  case BugPoint::CrashStoreToPrivateGlobal:
    return "dse: store to module-scope private variable";
  case BugPoint::CrashUnusedCallResult:
    return "frontend: call result has no uses";
  case BugPoint::CrashModuleFunctionLimit:
    return "frontend: module exceeds function limit";
  case BugPoint::CrashNegatedConstantBranch:
    return "frontend: branch on negated constant";
  case BugPoint::MiscompileUniformBranchFold:
  case BugPoint::MiscompilePhiLayoutOrder:
  case BugPoint::MiscompileAliasBlindForward:
    return "<miscompilation>";
  }
  return "<unknown>";
}

OptPassKind spvfuzz::bugHostPass(BugPoint Point) {
  switch (Point) {
  case BugPoint::CrashKillObstructsMerge:
    return OptPassKind::SimplifyCfg;
  case BugPoint::CrashDeadStoreToModuleScope:
  case BugPoint::CrashEqualTargetBranch:
  case BugPoint::MiscompileUniformBranchFold:
    return OptPassKind::DeadBranchElim;
  case BugPoint::CrashDontInlineAttribute:
  case BugPoint::CrashWideCallArity:
    return OptPassKind::Inliner;
  case BugPoint::CrashCopyChainValueNumbering:
    return OptPassKind::LocalCSE;
  case BugPoint::CrashPhiManyPredecessors:
  case BugPoint::MiscompilePhiLayoutOrder:
    return OptPassKind::BlockLayout;
  case BugPoint::CrashCompositeFold:
    return OptPassKind::ConstantFold;
  case BugPoint::CrashUnusedComposite:
    return OptPassKind::Dce;
  case BugPoint::CrashPointerCopyAlias:
  case BugPoint::MiscompileAliasBlindForward:
    return OptPassKind::LoadStoreForwarding;
  case BugPoint::CrashStoreToPrivateGlobal:
    return OptPassKind::DeadStoreElim;
  // The "lowering"-signature phi bug and the unused-call-result bug both
  // fire in the frontend diagnostics sweep, not in PhiSimplify/DCE.
  case BugPoint::CrashTrivialPhi:
  case BugPoint::CrashKillInCallee:
  case BugPoint::CrashUnusedCallResult:
  case BugPoint::CrashModuleFunctionLimit:
  case BugPoint::CrashNegatedConstantBranch:
    return OptPassKind::FrontendCheck;
  }
  return OptPassKind::FrontendCheck;
}

bool spvfuzz::bugPointOfSignature(const BugHost &Bugs,
                                  const std::string &Signature,
                                  BugPoint &Out) {
  if (Signature == "<miscompilation>")
    return false; // shared marker: not a per-point signature
  for (BugPoint Point : Bugs.all()) {
    if (Signature == bugSignature(Point)) {
      Out = Point;
      return true;
    }
  }
  return false;
}

const char *spvfuzz::optPassName(OptPassKind Kind) {
  switch (Kind) {
  case OptPassKind::FrontendCheck:
    return "frontend-check";
  case OptPassKind::SimplifyCfg:
    return "simplify-cfg";
  case OptPassKind::DeadBranchElim:
    return "dead-branch-elim";
  case OptPassKind::ConstantFold:
    return "constant-fold";
  case OptPassKind::CopyPropagation:
    return "copy-propagation";
  case OptPassKind::LoadStoreForwarding:
    return "load-store-forwarding";
  case OptPassKind::DeadStoreElim:
    return "dead-store-elim";
  case OptPassKind::Inliner:
    return "inliner";
  case OptPassKind::LocalCSE:
    return "local-cse";
  case OptPassKind::PhiSimplify:
    return "phi-simplify";
  case OptPassKind::BlockLayout:
    return "block-layout";
  case OptPassKind::Dce:
    return "dce";
  }
  return "unknown";
}

namespace {

PassCrash crash(BugPoint Point) { return std::string(bugSignature(Point)); }

//===----------------------------------------------------------------------===//
// Shared utilities
//===----------------------------------------------------------------------===//

/// Follows CopyObject chains to the underlying definition id.
Id pointerRoot(const Module &M, Id TheId) {
  const Instruction *Def = M.findDef(TheId);
  while (Def && Def->Opcode == Op::CopyObject) {
    TheId = Def->idOperand(0);
    Def = M.findDef(TheId);
  }
  return TheId;
}

/// Finds or creates a scalar constant with the given type shape.
Id getScalarConstant(Module &M, bool IsBool, uint32_t Word) {
  Id TypeId = InvalidId;
  for (const Instruction &Global : M.GlobalInsts)
    if ((IsBool && Global.Opcode == Op::TypeBool) ||
        (!IsBool && Global.Opcode == Op::TypeInt))
      TypeId = Global.Result;
  assert(TypeId != InvalidId && "folding requires the scalar type to exist");
  for (const Instruction &Global : M.GlobalInsts) {
    if (Global.ResultType != TypeId)
      continue;
    if (!IsBool && Global.Opcode == Op::Constant &&
        Global.literalOperand(0) == Word)
      return Global.Result;
    if (IsBool && Global.Opcode == Op::ConstantTrue && Word)
      return Global.Result;
    if (IsBool && Global.Opcode == Op::ConstantFalse && !Word)
      return Global.Result;
  }
  Id Fresh = M.takeFreshId();
  if (IsBool)
    M.GlobalInsts.push_back(Instruction(
        Word ? Op::ConstantTrue : Op::ConstantFalse, TypeId, Fresh, {}));
  else
    M.GlobalInsts.push_back(
        Instruction(Op::Constant, TypeId, Fresh, {Operand::literal(Word)}));
  return Fresh;
}

/// Returns the constant defining \p TheId if it is a scalar constant.
const Instruction *scalarConstantDef(const Module &M, Id TheId) {
  const Instruction *Def = M.findDef(TheId);
  if (Def && (Def->Opcode == Op::Constant || Def->Opcode == Op::ConstantTrue ||
              Def->Opcode == Op::ConstantFalse))
    return Def;
  return nullptr;
}

/// Drops the (value, pred) pairs naming \p Pred from every phi of
/// \p Block.
void removePhiEntriesOf(BasicBlock &Block, Id Pred) {
  for (Instruction &Inst : Block.Body) {
    if (Inst.Opcode != Op::Phi)
      break;
    std::vector<Operand> Kept;
    for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2) {
      if (Inst.Operands[I + 1].asId() == Pred)
        continue;
      Kept.push_back(Inst.Operands[I]);
      Kept.push_back(Inst.Operands[I + 1]);
    }
    Inst.Operands = std::move(Kept);
  }
}

/// Removes blocks unreachable from the entry and drops phi entries whose
/// predecessor disappeared. Returns true if anything changed.
bool removeUnreachableBlocks(Function &Func) {
  Cfg Graph(Func);
  std::vector<Id> Removed;
  for (const BasicBlock &Block : Func.Blocks)
    if (!Graph.isReachable(Block.LabelId))
      Removed.push_back(Block.LabelId);
  if (Removed.empty())
    return false;
  Func.Blocks.erase(std::remove_if(Func.Blocks.begin(), Func.Blocks.end(),
                                   [&](const BasicBlock &Block) {
                                     return !Graph.isReachable(Block.LabelId);
                                   }),
                    Func.Blocks.end());
  for (BasicBlock &Block : Func.Blocks)
    for (Id Gone : Removed)
      removePhiEntriesOf(Block, Gone);
  return true;
}

//===----------------------------------------------------------------------===//
// FrontendCheck
//===----------------------------------------------------------------------===//

PassCrash runFrontendCheck(Module &M, const BugHost &Bugs) {
  if (Bugs.enabled(BugPoint::CrashModuleFunctionLimit) &&
      M.Functions.size() >= 5)
    return crash(BugPoint::CrashModuleFunctionLimit);
  if (Bugs.enabled(BugPoint::CrashUnusedCallResult)) {
    // Lowering scratch-register assignment chokes on calls whose results
    // are never consumed (a shape only the fuzzer produces).
    std::unordered_map<Id, size_t> UseCounts;
    for (const Function &Func : M.Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          for (const Operand &Opnd : Inst.Operands)
            if (Opnd.isId())
              ++UseCounts[Opnd.Word];
    for (const Function &Func : M.Functions)
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          if (Inst.Opcode == Op::FunctionCall && Inst.Result != InvalidId &&
              !M.isVoidTypeId(Inst.ResultType) && UseCounts[Inst.Result] == 0)
            return crash(BugPoint::CrashUnusedCallResult);
  }
  for (const Function &Func : M.Functions) {
    for (const BasicBlock &Block : Func.Blocks) {
      for (const Instruction &Inst : Block.Body) {
        if (Bugs.enabled(BugPoint::CrashKillInCallee) &&
            Inst.Opcode == Op::Kill && Func.id() != M.EntryPointId)
          return crash(BugPoint::CrashKillInCallee);
        if (Bugs.enabled(BugPoint::CrashTrivialPhi) &&
            Inst.Opcode == Op::Phi && Inst.Operands.size() == 2)
          return crash(BugPoint::CrashTrivialPhi);
        if (Bugs.enabled(BugPoint::CrashNegatedConstantBranch) &&
            Inst.Opcode == Op::BranchConditional) {
          const Instruction *CondDef = M.findDef(Inst.idOperand(0));
          if (CondDef && CondDef->Opcode == Op::LogicalNot &&
              scalarConstantDef(M, CondDef->idOperand(0)))
            return crash(BugPoint::CrashNegatedConstantBranch);
        }
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// SimplifyCfg
//===----------------------------------------------------------------------===//

PassCrash runSimplifyCfg(Module &M, const BugHost &Bugs) {
  for (Function &Func : M.Functions) {
    removeUnreachableBlocks(Func);
    if (Bugs.enabled(BugPoint::CrashKillObstructsMerge))
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          if (Inst.Opcode == Op::Kill)
            return crash(BugPoint::CrashKillObstructsMerge);

    // Merge straight-line pairs: B ends "Branch S", S's only predecessor is
    // B, and S starts with no phis.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      Cfg Graph(Func);
      for (BasicBlock &Block : Func.Blocks) {
        if (!Block.hasTerminator() ||
            Block.terminator().Opcode != Op::Branch)
          continue;
        Id SuccId = Block.terminator().idOperand(0);
        if (SuccId == Block.LabelId)
          continue;
        if (Graph.predecessors(SuccId).size() != 1)
          continue;
        BasicBlock *Succ = Func.findBlock(SuccId);
        if (!Succ || (!Succ->Body.empty() && Succ->Body[0].Opcode == Op::Phi))
          continue;
        // Splice S into B and rename S to B in downstream phis.
        Block.Body.pop_back();
        Block.Body.insert(Block.Body.end(), Succ->Body.begin(),
                          Succ->Body.end());
        std::vector<Id> NewSuccs = Block.successors();
        Func.Blocks.erase(Func.Blocks.begin() + *Func.blockIndex(SuccId));
        for (Id Downstream : NewSuccs)
          if (BasicBlock *DownstreamBlock = Func.findBlock(Downstream))
            for (Instruction &Inst : DownstreamBlock->Body) {
              if (Inst.Opcode != Op::Phi)
                break;
              for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2)
                if (Inst.Operands[I + 1].asId() == SuccId)
                  Inst.Operands[I + 1] = Operand::id(Block.LabelId);
            }
        Changed = true;
        break; // iteration state invalidated; restart
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// DeadBranchElim
//===----------------------------------------------------------------------===//

/// True when the block stores through a pointer that is a Private-storage
/// module-scope variable.
bool blockStoresToPrivateGlobal(const Module &M, const BasicBlock &Block) {
  for (const Instruction &Inst : Block.Body) {
    if (Inst.Opcode != Op::Store)
      continue;
    const Instruction *PtrDef = M.findDef(Inst.idOperand(0));
    if (PtrDef && PtrDef->Opcode == Op::Variable &&
        static_cast<StorageClass>(PtrDef->literalOperand(0)) ==
            StorageClass::Private)
      return true;
  }
  return false;
}

PassCrash runDeadBranchElim(Module &M, const BugHost &Bugs) {
  for (Function &Func : M.Functions) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock &Block : Func.Blocks) {
        if (!Block.hasTerminator() ||
            Block.terminator().Opcode != Op::BranchConditional)
          continue;
        const Instruction &Term = Block.terminator();
        Id TrueTarget = Term.idOperand(1);
        Id FalseTarget = Term.idOperand(2);

        if (Bugs.enabled(BugPoint::CrashEqualTargetBranch) &&
            TrueTarget == FalseTarget)
          return crash(BugPoint::CrashEqualTargetBranch);

        bool Fold = false;
        bool TakeTrue = true;
        if (const Instruction *CondDef =
                scalarConstantDef(M, Term.idOperand(0))) {
          Fold = true;
          TakeTrue = CondDef->Opcode == Op::ConstantTrue;
        } else if (TrueTarget == FalseTarget) {
          Fold = true; // degenerate conditional: either arm is correct
        } else if (Bugs.enabled(BugPoint::MiscompileUniformBranchFold)) {
          // Injected bug: a branch on a *loaded boolean uniform* is folded
          // as if the uniform were false.
          const Instruction *CondDef = M.findDef(Term.idOperand(0));
          if (CondDef && CondDef->Opcode == Op::Load) {
            const Instruction *PtrDef = M.findDef(CondDef->idOperand(0));
            if (PtrDef && PtrDef->Opcode == Op::Variable &&
                static_cast<StorageClass>(PtrDef->literalOperand(0)) ==
                    StorageClass::Uniform &&
                M.isBoolTypeId(CondDef->ResultType)) {
              Fold = true;
              TakeTrue = false;
            }
          }
        }
        if (!Fold)
          continue;

        Id Taken = TakeTrue ? TrueTarget : FalseTarget;
        Id NotTaken = TakeTrue ? FalseTarget : TrueTarget;
        if (NotTaken != Taken) {
          if (Bugs.enabled(BugPoint::CrashDeadStoreToModuleScope)) {
            const BasicBlock *Dead = Func.findBlock(NotTaken);
            if (Dead && blockStoresToPrivateGlobal(M, *Dead))
              return crash(BugPoint::CrashDeadStoreToModuleScope);
          }
          if (BasicBlock *DeadBlock = Func.findBlock(NotTaken))
            removePhiEntriesOf(*DeadBlock, Block.LabelId);
        }
        Block.Body.back() = ModuleBuilder::makeBranch(Taken);
        Changed = true;
      }
      if (Changed)
        removeUnreachableBlocks(Func);
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// ConstantFold
//===----------------------------------------------------------------------===//

int32_t foldIntBinOp(Op Opcode, int32_t Lhs, int32_t Rhs) {
  uint32_t UL = static_cast<uint32_t>(Lhs);
  uint32_t UR = static_cast<uint32_t>(Rhs);
  switch (Opcode) {
  case Op::IAdd:
    return static_cast<int32_t>(UL + UR);
  case Op::ISub:
    return static_cast<int32_t>(UL - UR);
  case Op::IMul:
    return static_cast<int32_t>(UL * UR);
  case Op::SDiv:
    if (Rhs == 0 || (Lhs == INT32_MIN && Rhs == -1))
      return 0;
    return Lhs / Rhs;
  case Op::SMod:
    if (Rhs == 0 || (Lhs == INT32_MIN && Rhs == -1))
      return 0;
    return Lhs % Rhs;
  default:
    assert(false && "not an int binop");
    return 0;
  }
}

PassCrash runConstantFold(Module &M, const BugHost &Bugs) {
  for (Function &Func : M.Functions) {
    for (BasicBlock &Block : Func.Blocks) {
      for (Instruction &Inst : Block.Body) {
        if (Bugs.enabled(BugPoint::CrashCompositeFold) &&
            Inst.Opcode == Op::CompositeExtract) {
          const Instruction *SourceDef = M.findDef(Inst.idOperand(0));
          if (SourceDef && SourceDef->Opcode == Op::CompositeConstruct)
            return crash(BugPoint::CrashCompositeFold);
        }

        auto ConstOf = [&](size_t OpIndex) {
          return scalarConstantDef(M, Inst.idOperand(OpIndex));
        };
        auto IntValOf = [](const Instruction *Def) {
          return static_cast<int32_t>(Def->literalOperand(0));
        };
        auto RewriteToCopy = [&](Id SourceId) {
          Inst = Instruction(Op::CopyObject, Inst.ResultType, Inst.Result,
                             {Operand::id(SourceId)});
        };

        if (isIntBinOp(Inst.Opcode)) {
          const Instruction *Lhs = ConstOf(0), *Rhs = ConstOf(1);
          if (Lhs && Rhs)
            RewriteToCopy(getScalarConstant(
                M, false,
                static_cast<uint32_t>(
                    foldIntBinOp(Inst.Opcode, IntValOf(Lhs), IntValOf(Rhs)))));
          continue;
        }
        if (isIntComparison(Inst.Opcode)) {
          const Instruction *Lhs = ConstOf(0), *Rhs = ConstOf(1);
          if (!Lhs || !Rhs)
            continue;
          int32_t A = IntValOf(Lhs), B = IntValOf(Rhs);
          bool Out = false;
          switch (Inst.Opcode) {
          case Op::IEqual:
            Out = A == B;
            break;
          case Op::INotEqual:
            Out = A != B;
            break;
          case Op::SLessThan:
            Out = A < B;
            break;
          case Op::SLessThanEqual:
            Out = A <= B;
            break;
          case Op::SGreaterThan:
            Out = A > B;
            break;
          case Op::SGreaterThanEqual:
            Out = A >= B;
            break;
          default:
            break;
          }
          RewriteToCopy(getScalarConstant(M, true, Out ? 1 : 0));
          continue;
        }
        if (Inst.Opcode == Op::LogicalNot) {
          if (const Instruction *In = ConstOf(0))
            RewriteToCopy(getScalarConstant(
                M, true, In->Opcode == Op::ConstantTrue ? 0 : 1));
          continue;
        }
        if (Inst.Opcode == Op::LogicalAnd || Inst.Opcode == Op::LogicalOr) {
          const Instruction *Lhs = ConstOf(0), *Rhs = ConstOf(1);
          if (!Lhs || !Rhs)
            continue;
          bool A = Lhs->Opcode == Op::ConstantTrue;
          bool B = Rhs->Opcode == Op::ConstantTrue;
          bool Out = Inst.Opcode == Op::LogicalAnd ? (A && B) : (A || B);
          RewriteToCopy(getScalarConstant(M, true, Out ? 1 : 0));
          continue;
        }
        if (Inst.Opcode == Op::Select) {
          if (const Instruction *Cond = ConstOf(0))
            RewriteToCopy(
                Inst.idOperand(Cond->Opcode == Op::ConstantTrue ? 1 : 2));
          continue;
        }
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// CopyPropagation
//===----------------------------------------------------------------------===//

PassCrash runCopyPropagation(Module &M, const BugHost &) {
  std::unordered_map<Id, Id> CopyOf;
  for (const Function &Func : M.Functions)
    for (const BasicBlock &Block : Func.Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::CopyObject)
          CopyOf[Inst.Result] = Inst.idOperand(0);
  if (CopyOf.empty())
    return std::nullopt;

  auto Resolve = [&CopyOf](Id TheId) {
    while (true) {
      auto It = CopyOf.find(TheId);
      if (It == CopyOf.end())
        return TheId;
      TheId = It->second;
    }
  };

  for (Function &Func : M.Functions)
    for (BasicBlock &Block : Func.Blocks) {
      for (Instruction &Inst : Block.Body)
        for (size_t I = 0; I < Inst.Operands.size(); ++I) {
          if (!Inst.Operands[I].isId())
            continue;
          // Labels and function references resolve to themselves (copies
          // only name data values), so a blanket resolve is safe.
          Inst.Operands[I] = Operand::id(Resolve(Inst.Operands[I].Word));
        }
      Block.Body.erase(std::remove_if(Block.Body.begin(), Block.Body.end(),
                                      [](const Instruction &Inst) {
                                        return Inst.Opcode == Op::CopyObject;
                                      }),
                       Block.Body.end());
    }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// LoadStoreForwarding
//===----------------------------------------------------------------------===//

PassCrash runLoadStoreForwarding(Module &M, const BugHost &Bugs) {
  bool AliasBlind = Bugs.enabled(BugPoint::MiscompileAliasBlindForward);
  for (Function &Func : M.Functions) {
    for (BasicBlock &Block : Func.Blocks) {
      std::unordered_map<Id, Id> Known; // pointer id -> value id
      for (Instruction &Inst : Block.Body) {
        switch (Inst.Opcode) {
        case Op::Load: {
          Id Pointer = Inst.idOperand(0);
          auto It = Known.find(Pointer);
          if (It != Known.end()) {
            Inst = Instruction(Op::CopyObject, Inst.ResultType, Inst.Result,
                               {Operand::id(It->second)});
          } else {
            Known[Pointer] = Inst.Result; // load-to-load forwarding
          }
          break;
        }
        case Op::Store: {
          Id Pointer = Inst.idOperand(0);
          if (Bugs.enabled(BugPoint::CrashPointerCopyAlias)) {
            const Instruction *PtrDef = M.findDef(Pointer);
            if (PtrDef && PtrDef->Opcode == Op::CopyObject)
              return crash(BugPoint::CrashPointerCopyAlias);
          }
          if (AliasBlind) {
            // Injected bug: only the syntactically identical pointer id is
            // invalidated, so stores through copied pointers are missed.
            Known.erase(Pointer);
          } else {
            Id Root = pointerRoot(M, Pointer);
            for (auto It = Known.begin(); It != Known.end();)
              if (pointerRoot(M, It->first) == Root)
                It = Known.erase(It);
              else
                ++It;
          }
          Known[Pointer] = Inst.idOperand(1);
          break;
        }
        case Op::FunctionCall:
          Known.clear(); // the callee may write any memory we can name
          break;
        default:
          break;
        }
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// DeadStoreElim
//===----------------------------------------------------------------------===//

PassCrash runDeadStoreElim(Module &M, const BugHost &Bugs) {
  if (Bugs.enabled(BugPoint::CrashStoreToPrivateGlobal))
    for (const Function &Func : M.Functions)
      for (const BasicBlock &Block : Func.Blocks)
        if (blockStoresToPrivateGlobal(M, Block))
          return crash(BugPoint::CrashStoreToPrivateGlobal);

  for (Function &Func : M.Functions) {
    // Local variables whose only uses are as store destinations.
    std::unordered_set<Id> Locals;
    for (const Instruction &Inst : Func.entryBlock().Body)
      if (Inst.Opcode == Op::Variable)
        Locals.insert(Inst.Result);
    std::unordered_set<Id> Disqualified;
    for (const BasicBlock &Block : Func.Blocks)
      for (const Instruction &Inst : Block.Body)
        for (size_t I = 0; I < Inst.Operands.size(); ++I) {
          if (!Inst.Operands[I].isId() ||
              Locals.count(Inst.Operands[I].Word) == 0)
            continue;
          if (Inst.Opcode == Op::Store && I == 0)
            continue; // store destination: removable use
          Disqualified.insert(Inst.Operands[I].Word);
        }
    for (BasicBlock &Block : Func.Blocks)
      Block.Body.erase(
          std::remove_if(Block.Body.begin(), Block.Body.end(),
                         [&](const Instruction &Inst) {
                           return Inst.Opcode == Op::Store &&
                                  Locals.count(Inst.idOperand(0)) != 0 &&
                                  Disqualified.count(Inst.idOperand(0)) == 0;
                         }),
          Block.Body.end());
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Inliner
//===----------------------------------------------------------------------===//

/// True if \p From (transitively) calls \p To.
bool callsTransitively(const Module &M, Id From, Id To) {
  std::unordered_set<Id> Visited;
  std::vector<Id> Worklist = {From};
  while (!Worklist.empty()) {
    Id Current = Worklist.back();
    Worklist.pop_back();
    if (Current == To)
      return true;
    if (!Visited.insert(Current).second)
      continue;
    const Function *Func = M.findFunction(Current);
    if (!Func)
      continue;
    for (const BasicBlock &Block : Func->Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::FunctionCall)
          Worklist.push_back(Inst.idOperand(0));
  }
  return false;
}

/// Inlines the call at (\p CallerId, \p BlockId, \p CallIndex); the caller
/// guarantees legality. Fresh ids come from the module bound.
void inlineCallSite(Module &M, Id CallerId, Id BlockId, size_t CallIndex) {
  Function *Caller = M.findFunction(CallerId);
  BasicBlock *CallBlock = Caller->findBlock(BlockId);
  Instruction Call = CallBlock->Body[CallIndex];
  const Function CalleeCopy = *M.findFunction(Call.idOperand(0));

  std::unordered_map<Id, Id> Remap;
  for (size_t I = 0; I != CalleeCopy.Params.size(); ++I)
    Remap[CalleeCopy.Params[I].Result] = Call.idOperand(I + 1);
  for (const BasicBlock &Block : CalleeCopy.Blocks) {
    Remap[Block.LabelId] = M.takeFreshId();
    for (const Instruction &Inst : Block.Body)
      if (Inst.Result != InvalidId)
        Remap[Inst.Result] = M.takeFreshId();
  }
  auto MapId = [&Remap](Id TheId) {
    auto It = Remap.find(TheId);
    return It == Remap.end() ? TheId : It->second;
  };

  Id AfterBlockId = M.takeFreshId();
  BasicBlock After(AfterBlockId);
  After.Body.assign(CallBlock->Body.begin() + CallIndex + 1,
                    CallBlock->Body.end());
  CallBlock->Body.erase(CallBlock->Body.begin() + CallIndex,
                        CallBlock->Body.end());
  for (Id Succ : After.successors())
    if (BasicBlock *SuccBlock = Caller->findBlock(Succ))
      for (Instruction &Inst : SuccBlock->Body) {
        if (Inst.Opcode != Op::Phi)
          break;
        for (size_t I = 0; I + 1 < Inst.Operands.size(); I += 2)
          if (Inst.Operands[I + 1].asId() == BlockId)
            Inst.Operands[I + 1] = Operand::id(AfterBlockId);
      }

  std::vector<BasicBlock> Cloned;
  std::vector<Instruction> HoistedVariables;
  std::vector<std::pair<Id, Id>> ReturnSites;
  for (const BasicBlock &Block : CalleeCopy.Blocks) {
    BasicBlock NewBlock(MapId(Block.LabelId));
    for (const Instruction &Inst : Block.Body) {
      Instruction Copy = Inst;
      if (Copy.Result != InvalidId)
        Copy.Result = MapId(Copy.Result);
      for (Operand &Opnd : Copy.Operands)
        if (Opnd.isId())
          Opnd = Operand::id(MapId(Opnd.Word));
      if (Copy.Opcode == Op::Variable) {
        HoistedVariables.push_back(std::move(Copy));
        continue;
      }
      if (Copy.Opcode == Op::Return) {
        NewBlock.Body.push_back(ModuleBuilder::makeBranch(AfterBlockId));
        continue;
      }
      if (Copy.Opcode == Op::ReturnValue) {
        ReturnSites.push_back({Copy.idOperand(0), NewBlock.LabelId});
        NewBlock.Body.push_back(ModuleBuilder::makeBranch(AfterBlockId));
        continue;
      }
      NewBlock.Body.push_back(std::move(Copy));
    }
    Cloned.push_back(std::move(NewBlock));
  }

  CallBlock->Body.push_back(
      ModuleBuilder::makeBranch(MapId(CalleeCopy.entryBlock().LabelId)));

  if (!M.isVoidTypeId(CalleeCopy.returnTypeId())) {
    std::vector<Operand> PhiOps;
    for (auto [ValueId, ReturnBlock] : ReturnSites) {
      PhiOps.push_back(Operand::id(ValueId));
      PhiOps.push_back(Operand::id(ReturnBlock));
    }
    After.Body.insert(After.Body.begin(),
                      Instruction(Op::Phi, CalleeCopy.returnTypeId(),
                                  Call.Result, std::move(PhiOps)));
  }

  size_t InsertAt = *Caller->blockIndex(BlockId) + 1;
  Cloned.push_back(std::move(After));
  Caller->Blocks.insert(Caller->Blocks.begin() + InsertAt,
                        std::make_move_iterator(Cloned.begin()),
                        std::make_move_iterator(Cloned.end()));
  BasicBlock &Entry = Caller->entryBlock();
  Entry.Body.insert(Entry.Body.begin() + Entry.firstInsertionIndex(),
                    std::make_move_iterator(HoistedVariables.begin()),
                    std::make_move_iterator(HoistedVariables.end()));
}

PassCrash runInliner(Module &M, const BugHost &Bugs) {
  // One sweep: inline every currently-eligible call site (no iteration, to
  // keep compile time bounded).
  struct Site {
    Id Caller;
    Id Block;
    Id Callee;
    Id CallResult;
  };
  std::vector<Site> Sites;
  for (const Function &Func : M.Functions)
    for (const BasicBlock &Block : Func.Blocks)
      for (const Instruction &Inst : Block.Body)
        if (Inst.Opcode == Op::FunctionCall)
          Sites.push_back(
              {Func.id(), Block.LabelId, Inst.idOperand(0), Inst.Result});

  for (const Site &S : Sites) {
    const Function *Callee = M.findFunction(S.Callee);
    if (!Callee || S.Callee == S.Caller)
      continue;
    // Re-find the call instruction (earlier inlining may have moved it).
    Function *Caller = M.findFunction(S.Caller);
    BasicBlock *Block = nullptr;
    size_t CallIndex = 0;
    for (BasicBlock &Candidate : Caller->Blocks)
      for (size_t I = 0; I < Candidate.Body.size(); ++I)
        if (Candidate.Body[I].Opcode == Op::FunctionCall &&
            Candidate.Body[I].Result == S.CallResult) {
          Block = &Candidate;
          CallIndex = I;
        }
    if (!Block)
      continue;

    const Instruction &Call = Block->Body[CallIndex];
    if (Bugs.enabled(BugPoint::CrashWideCallArity) &&
        Call.Operands.size() - 1 >= 4)
      return crash(BugPoint::CrashWideCallArity);
    if (Callee->isDontInline()) {
      if (Bugs.enabled(BugPoint::CrashDontInlineAttribute))
        return crash(BugPoint::CrashDontInlineAttribute);
      continue; // honor the attribute
    }
    size_t CalleeSize = 0;
    for (const BasicBlock &CalleeBlock : Callee->Blocks)
      CalleeSize += CalleeBlock.Body.size();
    if (CalleeSize > 120)
      continue;
    if (callsTransitively(M, S.Callee, S.Caller))
      continue;
    // Non-void callees need a return site for the result phi.
    if (!M.isVoidTypeId(Callee->returnTypeId())) {
      bool HasReturn = false;
      for (const BasicBlock &CalleeBlock : Callee->Blocks)
        if (CalleeBlock.hasTerminator() &&
            CalleeBlock.terminator().Opcode == Op::ReturnValue)
          HasReturn = true;
      if (!HasReturn)
        continue;
    }
    inlineCallSite(M, S.Caller, Block->LabelId, CallIndex);
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// LocalCSE
//===----------------------------------------------------------------------===//

PassCrash runLocalCse(Module &M, const BugHost &Bugs) {
  for (Function &Func : M.Functions) {
    for (BasicBlock &Block : Func.Blocks) {
      if (Bugs.enabled(BugPoint::CrashCopyChainValueNumbering))
        for (const Instruction &Inst : Block.Body)
          if (Inst.Opcode == Op::CopyObject) {
            const Instruction *SourceDef = M.findDef(Inst.idOperand(0));
            if (SourceDef && SourceDef->Opcode == Op::CopyObject)
              return crash(BugPoint::CrashCopyChainValueNumbering);
          }
      // Value-number pure instructions by (opcode, type, operands).
      std::vector<std::pair<const Instruction *, Id>> Seen;
      for (Instruction &Inst : Block.Body) {
        if (!isSideEffectFree(Inst.Opcode) || Inst.Opcode == Op::Phi ||
            Inst.Opcode == Op::Load || Inst.Opcode == Op::CopyObject)
          continue;
        bool Replaced = false;
        for (auto &[Earlier, EarlierResult] : Seen) {
          if (Earlier->Opcode == Inst.Opcode &&
              Earlier->ResultType == Inst.ResultType &&
              Earlier->Operands == Inst.Operands) {
            Inst = Instruction(Op::CopyObject, Inst.ResultType, Inst.Result,
                               {Operand::id(EarlierResult)});
            Replaced = true;
            break;
          }
        }
        if (!Replaced)
          Seen.push_back({&Inst, Inst.Result});
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// PhiSimplify
//===----------------------------------------------------------------------===//

PassCrash runPhiSimplify(Module &M, const BugHost & /*Bugs*/) {
  for (Function &Func : M.Functions) {
    for (BasicBlock &Block : Func.Blocks) {
      // Collect simplifiable phis first, then rewrite (the replacement
      // leaves the phi zone).
      std::vector<Instruction> Rewritten;
      size_t PhiEnd = 0;
      while (PhiEnd < Block.Body.size() &&
             Block.Body[PhiEnd].Opcode == Op::Phi)
        ++PhiEnd;
      std::vector<Instruction> KeptPhis;
      for (size_t I = 0; I < PhiEnd; ++I) {
        Instruction &Phi = Block.Body[I];
        size_t NumPairs = Phi.Operands.size() / 2;
        bool AllSame = NumPairs >= 1;
        for (size_t P = 1; P < NumPairs; ++P)
          if (Phi.Operands[2 * P].asId() != Phi.Operands[0].asId())
            AllSame = false;
        if (AllSame) {
          Rewritten.push_back(Instruction(Op::CopyObject, Phi.ResultType,
                                          Phi.Result,
                                          {Operand::id(Phi.idOperand(0))}));
        } else {
          KeptPhis.push_back(Phi);
        }
      }
      if (Rewritten.empty())
        continue;
      std::vector<Instruction> NewBody = std::move(KeptPhis);
      NewBody.insert(NewBody.end(), Rewritten.begin(), Rewritten.end());
      NewBody.insert(NewBody.end(), Block.Body.begin() + PhiEnd,
                     Block.Body.end());
      Block.Body = std::move(NewBody);
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// BlockLayout
//===----------------------------------------------------------------------===//

PassCrash runBlockLayout(Module &M, const BugHost &Bugs) {
  for (Function &Func : M.Functions) {
    Cfg Graph(Func);
    if (Bugs.enabled(BugPoint::CrashPhiManyPredecessors))
      for (const BasicBlock &Block : Func.Blocks)
        if (Graph.isReachable(Block.LabelId))
          for (const Instruction &Inst : Block.Body) {
            if (Inst.Opcode != Op::Phi)
              break;
            if (Inst.Operands.size() / 2 >= 3)
              return crash(BugPoint::CrashPhiManyPredecessors);
          }

    // Reorder reachable blocks into reverse postorder; unreachable blocks
    // keep their relative order at the end.
    std::vector<BasicBlock> NewOrder;
    for (Id BlockId : Graph.reversePostorder())
      NewOrder.push_back(std::move(*Func.findBlock(BlockId)));
    for (BasicBlock &Block : Func.Blocks)
      if (!Graph.isReachable(Block.LabelId) && Block.LabelId != InvalidId &&
          !Block.Body.empty())
        NewOrder.push_back(std::move(Block));
    // Guard against moved-from leftovers: rebuild by label presence.
    Func.Blocks = std::move(NewOrder);

    if (Bugs.enabled(BugPoint::MiscompilePhiLayoutOrder)) {
      // Injected bug (Figure 8b analogue): phi values are rebound to
      // predecessors positionally, sorted by the new layout order, so any
      // phi whose operand order disagreed with the layout gets shuffled
      // values.
      std::unordered_map<Id, size_t> LayoutIndex;
      for (size_t I = 0; I < Func.Blocks.size(); ++I)
        LayoutIndex[Func.Blocks[I].LabelId] = I;
      for (BasicBlock &Block : Func.Blocks) {
        if (!Graph.isReachable(Block.LabelId))
          continue;
        for (Instruction &Inst : Block.Body) {
          if (Inst.Opcode != Op::Phi)
            break;
          size_t NumPairs = Inst.Operands.size() / 2;
          if (NumPairs < 2)
            continue;
          std::vector<Id> Preds;
          for (size_t P = 0; P < NumPairs; ++P)
            Preds.push_back(Inst.Operands[2 * P + 1].asId());
          std::vector<Id> Sorted = Preds;
          std::sort(Sorted.begin(), Sorted.end(), [&](Id A, Id B) {
            return LayoutIndex[A] < LayoutIndex[B];
          });
          for (size_t P = 0; P < NumPairs; ++P)
            Inst.Operands[2 * P + 1] = Operand::id(Sorted[P]);
        }
      }
    }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

PassCrash runDce(Module &M, const BugHost &Bugs) {
  bool Changed = true;
  bool FirstRound = true;
  while (Changed) {
    Changed = false;
    std::unordered_map<Id, size_t> UseCounts;
    auto Count = [&UseCounts](const Instruction &Inst) {
      for (const Operand &Opnd : Inst.Operands)
        if (Opnd.isId())
          ++UseCounts[Opnd.Word];
    };
    for (const Instruction &Global : M.GlobalInsts)
      Count(Global);
    for (const Function &Func : M.Functions) {
      Count(Func.Def);
      for (const BasicBlock &Block : Func.Blocks)
        for (const Instruction &Inst : Block.Body)
          Count(Inst);
    }

    for (Function &Func : M.Functions) {
      for (BasicBlock &Block : Func.Blocks) {
        if (FirstRound) {
          for (const Instruction &Inst : Block.Body) {
            if (Bugs.enabled(BugPoint::CrashUnusedComposite) &&
                Inst.Opcode == Op::CompositeConstruct &&
                UseCounts[Inst.Result] == 0)
              return crash(BugPoint::CrashUnusedComposite);
          }
        }
        size_t Before = Block.Body.size();
        Block.Body.erase(
            std::remove_if(Block.Body.begin(), Block.Body.end(),
                           [&](const Instruction &Inst) {
                             if (Inst.Result == InvalidId ||
                                 UseCounts[Inst.Result] != 0)
                               return false;
                             if (Inst.Opcode == Op::Variable)
                               return true;
                             return isSideEffectFree(Inst.Opcode);
                           }),
            Block.Body.end());
        if (Block.Body.size() != Before)
          Changed = true;
      }
    }
    FirstRound = false;
  }
  return std::nullopt;
}

} // namespace

namespace {

PassCrash dispatchOptPass(OptPassKind Kind, Module &M, const BugHost &Bugs) {
  switch (Kind) {
  case OptPassKind::FrontendCheck:
    return runFrontendCheck(M, Bugs);
  case OptPassKind::SimplifyCfg:
    return runSimplifyCfg(M, Bugs);
  case OptPassKind::DeadBranchElim:
    return runDeadBranchElim(M, Bugs);
  case OptPassKind::ConstantFold:
    return runConstantFold(M, Bugs);
  case OptPassKind::CopyPropagation:
    return runCopyPropagation(M, Bugs);
  case OptPassKind::LoadStoreForwarding:
    return runLoadStoreForwarding(M, Bugs);
  case OptPassKind::DeadStoreElim:
    return runDeadStoreElim(M, Bugs);
  case OptPassKind::Inliner:
    return runInliner(M, Bugs);
  case OptPassKind::LocalCSE:
    return runLocalCse(M, Bugs);
  case OptPassKind::PhiSimplify:
    return runPhiSimplify(M, Bugs);
  case OptPassKind::BlockLayout:
    return runBlockLayout(M, Bugs);
  case OptPassKind::Dce:
    return runDce(M, Bugs);
  }
  return std::nullopt;
}

} // namespace

PassCrash spvfuzz::runOptPass(OptPassKind Kind, Module &M,
                              const BugHost &Bugs) {
  telemetry::MetricsRegistry &Metrics = telemetry::MetricsRegistry::global();
  if (!Metrics.enabled())
    return dispatchOptPass(Kind, M, Bugs);

  auto Start = std::chrono::steady_clock::now();
  PassCrash Crash = dispatchOptPass(Kind, M, Bugs);
  double Micros = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  const char *Name = optPassName(Kind);
  Metrics.add(std::string("opt.pass_runs.") + Name);
  Metrics.observe(std::string("opt.pass_time_us.") + Name, Micros);
  if (Crash)
    Metrics.add(std::string("opt.bug_triggers.") + *Crash);
  return Crash;
}

PassCrash spvfuzz::runPipeline(const std::vector<OptPassKind> &Pipeline,
                               Module &M, const BugHost &Bugs) {
  for (OptPassKind Kind : Pipeline)
    if (PassCrash Crash = runOptPass(Kind, M, Bugs))
      return Crash;
  return std::nullopt;
}
