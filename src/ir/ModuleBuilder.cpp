//===- ir/ModuleBuilder.cpp - Convenience module construction -------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/ModuleBuilder.h"

using namespace spvfuzz;

Id ModuleBuilder::addTypeDecl(Instruction Decl) {
  if (Id Existing = M.findExistingType(Decl))
    return Existing;
  Decl.Result = M.takeFreshId();
  M.GlobalInsts.push_back(Decl);
  return Decl.Result;
}

Id ModuleBuilder::addConstantDecl(Instruction Decl) {
  if (Id Existing = M.findExistingConstant(Decl))
    return Existing;
  Decl.Result = M.takeFreshId();
  M.GlobalInsts.push_back(Decl);
  return Decl.Result;
}

Id ModuleBuilder::getVoidType() {
  return addTypeDecl(Instruction(Op::TypeVoid, InvalidId, InvalidId, {}));
}

Id ModuleBuilder::getBoolType() {
  return addTypeDecl(Instruction(Op::TypeBool, InvalidId, InvalidId, {}));
}

Id ModuleBuilder::getIntType() {
  return addTypeDecl(
      Instruction(Op::TypeInt, InvalidId, InvalidId, {Operand::literal(32)}));
}

Id ModuleBuilder::getVectorType(Id ComponentType, uint32_t Count) {
  return addTypeDecl(
      Instruction(Op::TypeVector, InvalidId, InvalidId,
                  {Operand::id(ComponentType), Operand::literal(Count)}));
}

Id ModuleBuilder::getStructType(const std::vector<Id> &MemberTypes) {
  std::vector<Operand> Ops;
  for (Id Member : MemberTypes)
    Ops.push_back(Operand::id(Member));
  return addTypeDecl(
      Instruction(Op::TypeStruct, InvalidId, InvalidId, std::move(Ops)));
}

Id ModuleBuilder::getPointerType(StorageClass SC, Id PointeeType) {
  return addTypeDecl(
      Instruction(Op::TypePointer, InvalidId, InvalidId,
                  {Operand::literal(static_cast<uint32_t>(SC)),
                   Operand::id(PointeeType)}));
}

Id ModuleBuilder::getFunctionType(Id ReturnType,
                                  const std::vector<Id> &ParamTypes) {
  std::vector<Operand> Ops = {Operand::id(ReturnType)};
  for (Id Param : ParamTypes)
    Ops.push_back(Operand::id(Param));
  return addTypeDecl(
      Instruction(Op::TypeFunction, InvalidId, InvalidId, std::move(Ops)));
}

Id ModuleBuilder::getBoolConstant(bool Value) {
  return addConstantDecl(Instruction(
      Value ? Op::ConstantTrue : Op::ConstantFalse, getBoolType(), InvalidId,
      {}));
}

Id ModuleBuilder::getIntConstant(int32_t Value) {
  return addConstantDecl(
      Instruction(Op::Constant, getIntType(), InvalidId,
                  {Operand::literal(static_cast<uint32_t>(Value))}));
}

Id ModuleBuilder::getCompositeConstant(Id Type,
                                       const std::vector<Id> &Components) {
  std::vector<Operand> Ops;
  for (Id Component : Components)
    Ops.push_back(Operand::id(Component));
  return addConstantDecl(
      Instruction(Op::ConstantComposite, Type, InvalidId, std::move(Ops)));
}

Id ModuleBuilder::addUniform(Id ValueType, uint32_t Binding) {
  Id PtrType = getPointerType(StorageClass::Uniform, ValueType);
  Id Result = M.takeFreshId();
  M.GlobalInsts.push_back(Instruction(
      Op::Variable, PtrType, Result,
      {Operand::literal(static_cast<uint32_t>(StorageClass::Uniform)),
       Operand::literal(Binding)}));
  return Result;
}

Id ModuleBuilder::addOutput(Id ValueType, uint32_t Location) {
  Id PtrType = getPointerType(StorageClass::Output, ValueType);
  Id Result = M.takeFreshId();
  M.GlobalInsts.push_back(Instruction(
      Op::Variable, PtrType, Result,
      {Operand::literal(static_cast<uint32_t>(StorageClass::Output)),
       Operand::literal(Location)}));
  return Result;
}

Id ModuleBuilder::addPrivate(Id ValueType, Id Initializer) {
  Id PtrType = getPointerType(StorageClass::Private, ValueType);
  Id Result = M.takeFreshId();
  std::vector<Operand> Ops = {
      Operand::literal(static_cast<uint32_t>(StorageClass::Private))};
  if (Initializer != InvalidId)
    Ops.push_back(Operand::id(Initializer));
  M.GlobalInsts.push_back(
      Instruction(Op::Variable, PtrType, Result, std::move(Ops)));
  return Result;
}

Function &ModuleBuilder::startFunction(Id ReturnType,
                                       const std::vector<Id> &ParamTypes,
                                       std::vector<Id> *ParamIdsOut) {
  Id FuncType = getFunctionType(ReturnType, ParamTypes);
  Function Func;
  Func.Def = Instruction(Op::Function, ReturnType, M.takeFreshId(),
                         {Operand::literal(FC_None), Operand::id(FuncType)});
  for (Id ParamType : ParamTypes) {
    Id ParamId = M.takeFreshId();
    Func.Params.push_back(
        Instruction(Op::FunctionParameter, ParamType, ParamId, {}));
    if (ParamIdsOut)
      ParamIdsOut->push_back(ParamId);
  }
  Func.Blocks.emplace_back(M.takeFreshId());
  M.Functions.push_back(std::move(Func));
  return M.Functions.back();
}
