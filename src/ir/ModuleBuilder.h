//===- ir/ModuleBuilder.h - Convenience module construction ----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for building and extending modules: uniquified type and constant
/// creation (getOrAdd...), and instruction factories. Used by the program
/// generator, the transformations, and the tests.
///
//===----------------------------------------------------------------------===//

#ifndef IR_MODULEBUILDER_H
#define IR_MODULEBUILDER_H

#include "ir/Module.h"

namespace spvfuzz {

/// Wraps a Module and provides uniquified declaration helpers. The builder
/// does not own the module.
class ModuleBuilder {
public:
  explicit ModuleBuilder(Module &M) : M(M) {}

  Module &module() { return M; }

  // --- Types --------------------------------------------------------------

  Id getVoidType();
  Id getBoolType();
  Id getIntType();
  Id getVectorType(Id ComponentType, uint32_t Count);
  Id getStructType(const std::vector<Id> &MemberTypes);
  Id getPointerType(StorageClass SC, Id PointeeType);
  Id getFunctionType(Id ReturnType, const std::vector<Id> &ParamTypes);

  // --- Constants ----------------------------------------------------------

  Id getBoolConstant(bool Value);
  Id getIntConstant(int32_t Value);
  Id getCompositeConstant(Id Type, const std::vector<Id> &Components);

  // --- Variables ----------------------------------------------------------

  /// Adds a module-scope Uniform input variable of \p ValueType with the
  /// given binding; returns its (pointer-typed) id.
  Id addUniform(Id ValueType, uint32_t Binding);

  /// Adds a module-scope Output variable of \p ValueType with the given
  /// location; returns its id.
  Id addOutput(Id ValueType, uint32_t Location);

  /// Adds a module-scope Private variable of \p ValueType, optionally with a
  /// constant initializer; returns its id.
  Id addPrivate(Id ValueType, Id Initializer = InvalidId);

  // --- Functions ----------------------------------------------------------

  /// Starts a function with the given return and parameter types; creates
  /// the entry block. Returns a reference valid until the next function is
  /// added.
  Function &startFunction(Id ReturnType, const std::vector<Id> &ParamTypes,
                          std::vector<Id> *ParamIdsOut = nullptr);

  /// Marks \p FuncId as the module entry point.
  void setEntryPoint(Id FuncId) { M.EntryPointId = FuncId; }

  // --- Instruction factories ----------------------------------------------

  static Instruction makeBinOp(Op Opcode, Id ResultType, Id Result, Id Lhs,
                               Id Rhs) {
    return Instruction(Opcode, ResultType, Result,
                       {Operand::id(Lhs), Operand::id(Rhs)});
  }
  static Instruction makeUnaryOp(Op Opcode, Id ResultType, Id Result, Id In) {
    return Instruction(Opcode, ResultType, Result, {Operand::id(In)});
  }
  static Instruction makeLoad(Id ResultType, Id Result, Id Pointer) {
    return Instruction(Op::Load, ResultType, Result, {Operand::id(Pointer)});
  }
  static Instruction makeStore(Id Pointer, Id Value) {
    return Instruction(Op::Store, InvalidId, InvalidId,
                       {Operand::id(Pointer), Operand::id(Value)});
  }
  static Instruction makeBranch(Id Target) {
    return Instruction(Op::Branch, InvalidId, InvalidId, {Operand::id(Target)});
  }
  static Instruction makeBranchConditional(Id Cond, Id TrueTarget,
                                           Id FalseTarget) {
    return Instruction(
        Op::BranchConditional, InvalidId, InvalidId,
        {Operand::id(Cond), Operand::id(TrueTarget), Operand::id(FalseTarget)});
  }
  static Instruction makeReturn() {
    return Instruction(Op::Return, InvalidId, InvalidId, {});
  }
  static Instruction makeReturnValue(Id Value) {
    return Instruction(Op::ReturnValue, InvalidId, InvalidId,
                       {Operand::id(Value)});
  }
  static Instruction makeKill() {
    return Instruction(Op::Kill, InvalidId, InvalidId, {});
  }
  static Instruction makeSelect(Id ResultType, Id Result, Id Cond, Id TrueVal,
                                Id FalseVal) {
    return Instruction(
        Op::Select, ResultType, Result,
        {Operand::id(Cond), Operand::id(TrueVal), Operand::id(FalseVal)});
  }
  static Instruction makeLocalVariable(Id PointerType, Id Result,
                                       Id Initializer = InvalidId) {
    std::vector<Operand> Ops = {
        Operand::literal(static_cast<uint32_t>(StorageClass::Function))};
    if (Initializer != InvalidId)
      Ops.push_back(Operand::id(Initializer));
    return Instruction(Op::Variable, PointerType, Result, std::move(Ops));
  }

private:
  Id addTypeDecl(Instruction Decl);
  Id addConstantDecl(Instruction Decl);

  Module &M;
};

} // namespace spvfuzz

#endif // IR_MODULEBUILDER_H
