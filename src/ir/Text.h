//===- ir/Text.h - MiniSPV textual assembler / disassembler ----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable serialization of modules, in a SPIR-V-assembly-like
/// syntax. Used for bug reports (the "delta between original and reduced
/// variant" the paper proposes), donor corpora on disk, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef IR_TEXT_H
#define IR_TEXT_H

#include "ir/Module.h"

#include <string>

namespace spvfuzz {

/// Disassembles \p M.
std::string writeModuleText(const Module &M);

/// Assembles a module from \p Text. On failure returns false and sets
/// \p ErrorOut to a diagnostic that names the offending line.
bool readModuleText(const std::string &Text, Module &MOut,
                    std::string &ErrorOut);

/// Renders a unified line diff between two module disassemblies; used to
/// present the original-vs-reduced-variant delta of a bug report.
std::string diffModuleText(const Module &Before, const Module &After);

} // namespace spvfuzz

#endif // IR_TEXT_H
