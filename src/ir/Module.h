//===- ir/Module.h - MiniSPV blocks, functions and modules -----*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniSPV module structure. Mirrors the Vulkan subset of SPIR-V:
/// a module is a list of type/constant/global-variable declarations followed
/// by functions; each function is a list of basic blocks in an order where
/// the entry block comes first and every block appears before the blocks it
/// dominates; every value has a unique result id (SSA).
///
//===----------------------------------------------------------------------===//

#ifndef IR_MODULE_H
#define IR_MODULE_H

#include "ir/Instruction.h"

#include <optional>
#include <string>
#include <vector>

namespace spvfuzz {

/// A basic block: a label id plus a straight-line body whose last
/// instruction is the unique terminator. Phi instructions, if any, come
/// first. Function-storage OpVariable instructions may only appear at the
/// start of a function's entry block (after phis, which an entry block
/// cannot have).
struct BasicBlock {
  Id LabelId = InvalidId;
  std::vector<Instruction> Body;

  BasicBlock() = default;
  explicit BasicBlock(Id LabelId) : LabelId(LabelId) {}

  bool hasTerminator() const {
    return !Body.empty() && isTerminator(Body.back().Opcode);
  }

  const Instruction &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Body.back();
  }
  Instruction &terminator() {
    assert(hasTerminator() && "block has no terminator");
    return Body.back();
  }

  /// Returns the index of the first non-phi, non-variable instruction; this
  /// is the earliest position at which a general instruction may be
  /// inserted.
  size_t firstInsertionIndex() const;

  /// Returns the label ids of this block's CFG successors (empty for
  /// Return/ReturnValue/Kill).
  std::vector<Id> successors() const;

  /// Replaces successor label \p From with \p To in the terminator.
  void replaceSuccessor(Id From, Id To);
};

/// Function control mask bits (operand 0 of OpFunction).
enum FunctionControl : uint32_t {
  FC_None = 0,
  FC_DontInline = 1, // request that the inliner leave calls to this alone
};

/// A function: its OpFunction instruction, OpFunctionParameter
/// instructions, and basic blocks. Blocks[0] is the entry block.
struct Function {
  Instruction Def;                 // Op::Function
  std::vector<Instruction> Params; // Op::FunctionParameter
  std::vector<BasicBlock> Blocks;

  Id id() const { return Def.Result; }
  Id returnTypeId() const { return Def.ResultType; }
  Id functionTypeId() const { return Def.idOperand(1); }

  uint32_t controlMask() const { return Def.literalOperand(0); }
  void setControlMask(uint32_t Mask) {
    Def.Operands[0] = Operand::literal(Mask);
  }
  bool isDontInline() const { return (controlMask() & FC_DontInline) != 0; }

  BasicBlock &entryBlock() {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front();
  }
  const BasicBlock &entryBlock() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front();
  }

  /// Returns the block with label \p LabelId, or nullptr.
  BasicBlock *findBlock(Id LabelId);
  const BasicBlock *findBlock(Id LabelId) const;

  /// Returns the index of the block with label \p LabelId, or nullopt.
  std::optional<size_t> blockIndex(Id LabelId) const;
};

/// A MiniSPV module.
struct Module {
  /// One greater than the largest id in use; fresh ids are taken from here.
  Id Bound = 1;

  /// Types, constants and module-scope variables, in definition order.
  std::vector<Instruction> GlobalInsts;

  /// All functions; the entry point must be among them.
  std::vector<Function> Functions;

  /// The id of the entry-point function (void return, no parameters).
  Id EntryPointId = InvalidId;

  /// Takes a fresh id, bumping Bound.
  Id takeFreshId() { return Bound++; }

  /// Makes sure \p TheId will never be handed out as fresh.
  void reserveId(Id TheId) {
    if (TheId >= Bound)
      Bound = TheId + 1;
  }

  /// Returns the defining instruction of \p TheId: a global declaration, an
  /// OpFunction, an OpFunctionParameter or a body instruction. Returns
  /// nullptr for unknown ids and for block labels (see findBlockDef).
  const Instruction *findDef(Id TheId) const;
  Instruction *findDef(Id TheId);

  /// Returns the function defining label \p LabelId together with the block,
  /// or {nullptr, nullptr}.
  std::pair<Function *, BasicBlock *> findBlockDef(Id LabelId);
  std::pair<const Function *, const BasicBlock *> findBlockDef(Id LabelId) const;

  /// Returns the function with result id \p FuncId, or nullptr.
  Function *findFunction(Id FuncId);
  const Function *findFunction(Id FuncId) const;

  /// Returns the function whose blocks include \p LabelId, or nullptr.
  Function *functionContainingBlock(Id LabelId);

  const Function *entryPoint() const { return findFunction(EntryPointId); }
  Function *entryPoint() { return findFunction(EntryPointId); }

  /// Counts all instructions in the module (globals + function defs +
  /// parameters + labels + block bodies). This is the size measure used for
  /// the reduction-quality experiment (RQ2).
  size_t instructionCount() const;

  // --- Type and constant queries (module-level ids) ----------------------

  bool isIntTypeId(Id TypeId) const;
  bool isBoolTypeId(Id TypeId) const;
  bool isVoidTypeId(Id TypeId) const;
  bool isVectorTypeId(Id TypeId) const;
  bool isStructTypeId(Id TypeId) const;
  bool isPointerTypeId(Id TypeId) const;

  /// For a pointer type, returns (storage class, pointee type id).
  std::pair<StorageClass, Id> pointerInfo(Id PointerTypeId) const;

  /// For a vector type, returns (component type id, component count).
  std::pair<Id, uint32_t> vectorInfo(Id VectorTypeId) const;

  /// Returns the type id of the value produced by the declaration or body
  /// instruction defining \p TheId (InvalidId if it has no result type).
  Id typeOfId(Id TheId) const;

  /// Looks up an existing type declaration structurally equal to \p Inst
  /// (ignoring its Result); returns its id or InvalidId.
  Id findExistingType(const Instruction &Inst) const;

  /// Looks up an existing constant declaration structurally equal to
  /// \p Inst (ignoring its Result); returns its id or InvalidId.
  Id findExistingConstant(const Instruction &Inst) const;

  /// Appends \p Inst to the global section, reserving its result id.
  void addGlobal(Instruction Inst);
};

} // namespace spvfuzz

#endif // IR_MODULE_H
