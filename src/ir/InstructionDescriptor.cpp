//===- ir/InstructionDescriptor.cpp - Locating instructions ---------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/InstructionDescriptor.h"

using namespace spvfuzz;

/// Finds the block and index of the body instruction with result id
/// \p Base, or the block whose label is \p Base (index 0). Returns
/// (nullptr, ...) if \p Base names neither.
static LocatedInstruction findBase(Module &M, Id Base, bool &BaseIsLabel) {
  BaseIsLabel = false;
  for (Function &Func : M.Functions) {
    for (BasicBlock &Block : Func.Blocks) {
      if (Block.LabelId == Base) {
        BaseIsLabel = true;
        return {&Func, &Block, 0};
      }
      for (size_t I = 0, E = Block.Body.size(); I != E; ++I)
        if (Block.Body[I].Result == Base && Base != InvalidId)
          return {&Func, &Block, I};
    }
  }
  return {};
}

LocatedInstruction
spvfuzz::locateInstruction(Module &M, const InstructionDescriptor &Desc) {
  bool BaseIsLabel = false;
  LocatedInstruction Start = findBase(M, Desc.Base, BaseIsLabel);
  if (!Start.valid())
    return {};
  uint32_t Remaining = Desc.Skip;
  for (size_t I = Start.Index, E = Start.Block->Body.size(); I != E; ++I) {
    if (Start.Block->Body[I].Opcode != Desc.TargetOpcode)
      continue;
    if (Remaining == 0)
      return {Start.Func, Start.Block, I};
    --Remaining;
  }
  return {};
}

InstructionDescriptor spvfuzz::describeInstruction(const BasicBlock &Block,
                                                   size_t Index) {
  assert(Index < Block.Body.size() && "index out of range");
  Op TargetOpcode = Block.Body[Index].Opcode;

  // Find the nearest base at or before Index that has a result id.
  size_t BaseIndex = Index + 1; // sentinel: "no base instruction"
  for (size_t I = Index + 1; I-- > 0;) {
    if (Block.Body[I].Result != InvalidId) {
      BaseIndex = I;
      break;
    }
  }

  InstructionDescriptor Desc;
  size_t SearchStart;
  if (BaseIndex == Index + 1) {
    Desc.Base = Block.LabelId;
    SearchStart = 0;
  } else {
    Desc.Base = Block.Body[BaseIndex].Result;
    SearchStart = BaseIndex;
  }
  Desc.TargetOpcode = TargetOpcode;
  uint32_t Skip = 0;
  for (size_t I = SearchStart; I < Index; ++I)
    if (Block.Body[I].Opcode == TargetOpcode)
      ++Skip;
  Desc.Skip = Skip;
  return Desc;
}
