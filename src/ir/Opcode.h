//===- ir/Opcode.h - MiniSPV opcodes and classification ---------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniSPV opcode set: a from-scratch SSA intermediate representation
/// modelled on the Vulkan subset of SPIR-V. A module is a sequence of type,
/// constant and global-variable declarations followed by functions made of
/// basic blocks; every value-producing instruction has a unique result id.
///
//===----------------------------------------------------------------------===//

#ifndef IR_OPCODE_H
#define IR_OPCODE_H

#include <cstdint>
#include <string>

namespace spvfuzz {

/// A result id; 0 is the invalid id.
using Id = uint32_t;
inline constexpr Id InvalidId = 0;

/// MiniSPV opcodes. The names deliberately mirror SPIR-V.
enum class Op : uint8_t {
  // Type declarations (module-level).
  TypeVoid,
  TypeBool,
  TypeInt,
  TypeVector,
  TypeStruct,
  TypePointer,
  TypeFunction,

  // Constant declarations (module-level).
  ConstantTrue,
  ConstantFalse,
  Constant,
  ConstantComposite,

  // Memory.
  Variable, // module-level (Private/Uniform/Output) or function-local
  Load,
  Store,

  // Arithmetic. Integer arithmetic wraps; division/remainder by zero is
  // defined to yield zero, making all MiniSPV programs free from UB.
  IAdd,
  ISub,
  IMul,
  SDiv,
  SMod,
  SNegate,

  // Logic and comparison.
  LogicalAnd,
  LogicalOr,
  LogicalNot,
  IEqual,
  INotEqual,
  SLessThan,
  SLessThanEqual,
  SGreaterThan,
  SGreaterThanEqual,

  // Data movement.
  Select,
  CopyObject,
  CompositeConstruct,
  CompositeExtract,

  // Control flow.
  Phi,
  Branch,
  BranchConditional,
  Return,
  ReturnValue,
  Kill, // terminates the whole invocation (fragment discard)

  // Functions.
  Function,
  FunctionParameter,
  FunctionCall,
};

/// Number of opcodes (for codec validation and tables indexed by opcode).
inline constexpr size_t NumOpcodes = static_cast<size_t>(Op::FunctionCall) + 1;

/// Storage classes for Variable and TypePointer.
enum class StorageClass : uint32_t {
  Function = 0, // function-local, zero-initialized unless an initializer given
  Private = 1,  // module-scope mutable
  Uniform = 2,  // read-only input, value supplied per execution via a binding
  Output = 3,   // write-only result, reported per location after execution
};

/// Returns the SPIR-V style mnemonic, e.g. "OpIAdd".
const char *opName(Op Opcode);

/// Parses a mnemonic produced by opName; returns false on failure.
bool opFromName(const std::string &Name, Op &Out);

/// True for the module-level type declaration opcodes.
bool isTypeDecl(Op Opcode);

/// True for the module-level constant declaration opcodes.
bool isConstantDecl(Op Opcode);

/// True for block terminators.
bool isTerminator(Op Opcode);

/// True if instructions with this opcode produce a result id.
bool hasResult(Op Opcode);

/// True if instructions with this opcode carry a result type.
bool hasResultType(Op Opcode);

/// True for the commutative binary operators (used by
/// TransformationSwapCommutableOperands).
bool isCommutativeBinOp(Op Opcode);

/// True for binary operators taking two integer operands.
bool isIntBinOp(Op Opcode);

/// True for comparisons taking two integer operands and yielding bool.
bool isIntComparison(Op Opcode);

/// True if the instruction has no side effects and its result (if any) is
/// the only way it can influence execution, i.e. it is a candidate for dead
/// code elimination when unused.
bool isSideEffectFree(Op Opcode);

/// Returns the mnemonic for a storage class, e.g. "Uniform".
const char *storageClassName(StorageClass SC);

/// Parses a storage-class mnemonic; returns false on failure.
bool storageClassFromName(const std::string &Name, StorageClass &Out);

} // namespace spvfuzz

#endif // IR_OPCODE_H
