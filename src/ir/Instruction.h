//===- ir/Instruction.h - MiniSPV instructions ------------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions and operands. Instructions are plain values so that modules
/// can be copied cheaply — the fuzzer and the reducer clone modules
/// constantly when replaying transformation sequences.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INSTRUCTION_H
#define IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cassert>
#include <vector>

namespace spvfuzz {

/// An instruction operand: either a reference to a result id or a literal
/// 32-bit word (used for integer constant payloads, storage classes,
/// composite-extract indices, bindings, locations and function control
/// masks).
struct Operand {
  enum class Kind : uint8_t { IdRef, Literal };

  Kind OperandKind = Kind::IdRef;
  uint32_t Word = 0;

  static Operand id(Id TheId) { return {Kind::IdRef, TheId}; }
  static Operand literal(uint32_t Word) { return {Kind::Literal, Word}; }

  bool isId() const { return OperandKind == Kind::IdRef; }
  bool isLiteral() const { return OperandKind == Kind::Literal; }

  Id asId() const {
    assert(isId() && "operand is not an id");
    return Word;
  }
  uint32_t asLiteral() const {
    assert(isLiteral() && "operand is not a literal");
    return Word;
  }

  bool operator==(const Operand &Other) const {
    return OperandKind == Other.OperandKind && Word == Other.Word;
  }
};

/// Operand layouts, by opcode (operands listed in order):
///   TypeInt:             literal width (always 32)
///   TypeVector:          id component type, literal component count
///   TypeStruct:          id member types...
///   TypePointer:         literal storage class, id pointee type
///   TypeFunction:        id return type, id parameter types...
///   Constant:            literal value (two's complement bit pattern)
///   ConstantComposite:   id components...
///   Variable:            literal storage class,
///                        [literal binding/location for Uniform/Output],
///                        [id initializer for Function/Private]
///   Load:                id pointer
///   Store:               id pointer, id value
///   binary ops:          id lhs, id rhs
///   SNegate/LogicalNot/CopyObject: id operand
///   Select:              id condition, id true value, id false value
///   CompositeConstruct:  id components...
///   CompositeExtract:    id composite, literal indices...
///   Phi:                 (id value, id predecessor label) pairs...
///   Branch:              id target label
///   BranchConditional:   id condition, id true label, id false label
///   ReturnValue:         id value
///   Function:            literal control mask (bit 0: DontInline),
///                        id function type
///   FunctionCall:        id callee, id arguments...
struct Instruction {
  Op Opcode = Op::Return;
  Id ResultType = InvalidId; // 0 when the opcode has no result type
  Id Result = InvalidId;     // 0 when the opcode has no result
  std::vector<Operand> Operands;

  Instruction() = default;
  Instruction(Op Opcode, Id ResultType, Id Result,
              std::vector<Operand> Operands)
      : Opcode(Opcode), ResultType(ResultType), Result(Result),
        Operands(std::move(Operands)) {}

  /// Convenience accessor asserting the operand at \p Index is an id.
  Id idOperand(size_t Index) const {
    assert(Index < Operands.size() && "operand index out of range");
    return Operands[Index].asId();
  }

  /// Convenience accessor asserting the operand at \p Index is a literal.
  uint32_t literalOperand(size_t Index) const {
    assert(Index < Operands.size() && "operand index out of range");
    return Operands[Index].asLiteral();
  }

  /// Invokes \p Action(Id) for each id operand, including the result type.
  template <typename Callable> void forEachUsedId(Callable Action) const {
    if (ResultType != InvalidId)
      Action(ResultType);
    for (const Operand &Op : Operands)
      if (Op.isId())
        Action(Op.Word);
  }

  bool operator==(const Instruction &Other) const {
    return Opcode == Other.Opcode && ResultType == Other.ResultType &&
           Result == Other.Result && Operands == Other.Operands;
  }
};

} // namespace spvfuzz

#endif // IR_INSTRUCTION_H
