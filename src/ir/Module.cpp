//===- ir/Module.cpp - MiniSPV blocks, functions and modules --------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <algorithm>

using namespace spvfuzz;

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

size_t BasicBlock::firstInsertionIndex() const {
  size_t Index = 0;
  while (Index < Body.size() && (Body[Index].Opcode == Op::Phi ||
                                 Body[Index].Opcode == Op::Variable))
    ++Index;
  return Index;
}

std::vector<Id> BasicBlock::successors() const {
  if (!hasTerminator())
    return {};
  const Instruction &Term = terminator();
  switch (Term.Opcode) {
  case Op::Branch:
    return {Term.idOperand(0)};
  case Op::BranchConditional:
    return {Term.idOperand(1), Term.idOperand(2)};
  default:
    return {};
  }
}

void BasicBlock::replaceSuccessor(Id From, Id To) {
  assert(hasTerminator() && "block has no terminator");
  Instruction &Term = terminator();
  switch (Term.Opcode) {
  case Op::Branch:
    if (Term.idOperand(0) == From)
      Term.Operands[0] = Operand::id(To);
    break;
  case Op::BranchConditional:
    if (Term.idOperand(1) == From)
      Term.Operands[1] = Operand::id(To);
    if (Term.idOperand(2) == From)
      Term.Operands[2] = Operand::id(To);
    break;
  default:
    break;
  }
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

BasicBlock *Function::findBlock(Id LabelId) {
  for (BasicBlock &Block : Blocks)
    if (Block.LabelId == LabelId)
      return &Block;
  return nullptr;
}

const BasicBlock *Function::findBlock(Id LabelId) const {
  return const_cast<Function *>(this)->findBlock(LabelId);
}

std::optional<size_t> Function::blockIndex(Id LabelId) const {
  for (size_t I = 0, E = Blocks.size(); I != E; ++I)
    if (Blocks[I].LabelId == LabelId)
      return I;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

const Instruction *Module::findDef(Id TheId) const {
  return const_cast<Module *>(this)->findDef(TheId);
}

Instruction *Module::findDef(Id TheId) {
  if (TheId == InvalidId)
    return nullptr;
  for (Instruction &Inst : GlobalInsts)
    if (Inst.Result == TheId)
      return &Inst;
  for (Function &Func : Functions) {
    if (Func.Def.Result == TheId)
      return &Func.Def;
    for (Instruction &Param : Func.Params)
      if (Param.Result == TheId)
        return &Param;
    for (BasicBlock &Block : Func.Blocks)
      for (Instruction &Inst : Block.Body)
        if (Inst.Result == TheId)
          return &Inst;
  }
  return nullptr;
}

std::pair<Function *, BasicBlock *> Module::findBlockDef(Id LabelId) {
  for (Function &Func : Functions)
    if (BasicBlock *Block = Func.findBlock(LabelId))
      return {&Func, Block};
  return {nullptr, nullptr};
}

std::pair<const Function *, const BasicBlock *>
Module::findBlockDef(Id LabelId) const {
  auto Pair = const_cast<Module *>(this)->findBlockDef(LabelId);
  return {Pair.first, Pair.second};
}

Function *Module::findFunction(Id FuncId) {
  for (Function &Func : Functions)
    if (Func.id() == FuncId)
      return &Func;
  return nullptr;
}

const Function *Module::findFunction(Id FuncId) const {
  return const_cast<Module *>(this)->findFunction(FuncId);
}

Function *Module::functionContainingBlock(Id LabelId) {
  return findBlockDef(LabelId).first;
}

size_t Module::instructionCount() const {
  size_t Count = GlobalInsts.size();
  for (const Function &Func : Functions) {
    Count += 1 /* OpFunction */ + Func.Params.size();
    for (const BasicBlock &Block : Func.Blocks)
      Count += 1 /* OpLabel */ + Block.Body.size();
  }
  return Count;
}

bool Module::isIntTypeId(Id TypeId) const {
  const Instruction *Def = findDef(TypeId);
  return Def && Def->Opcode == Op::TypeInt;
}

bool Module::isBoolTypeId(Id TypeId) const {
  const Instruction *Def = findDef(TypeId);
  return Def && Def->Opcode == Op::TypeBool;
}

bool Module::isVoidTypeId(Id TypeId) const {
  const Instruction *Def = findDef(TypeId);
  return Def && Def->Opcode == Op::TypeVoid;
}

bool Module::isVectorTypeId(Id TypeId) const {
  const Instruction *Def = findDef(TypeId);
  return Def && Def->Opcode == Op::TypeVector;
}

bool Module::isStructTypeId(Id TypeId) const {
  const Instruction *Def = findDef(TypeId);
  return Def && Def->Opcode == Op::TypeStruct;
}

bool Module::isPointerTypeId(Id TypeId) const {
  const Instruction *Def = findDef(TypeId);
  return Def && Def->Opcode == Op::TypePointer;
}

std::pair<StorageClass, Id> Module::pointerInfo(Id PointerTypeId) const {
  const Instruction *Def = findDef(PointerTypeId);
  assert(Def && Def->Opcode == Op::TypePointer && "not a pointer type");
  return {static_cast<StorageClass>(Def->literalOperand(0)),
          Def->idOperand(1)};
}

std::pair<Id, uint32_t> Module::vectorInfo(Id VectorTypeId) const {
  const Instruction *Def = findDef(VectorTypeId);
  assert(Def && Def->Opcode == Op::TypeVector && "not a vector type");
  return {Def->idOperand(0), Def->literalOperand(1)};
}

Id Module::typeOfId(Id TheId) const {
  const Instruction *Def = findDef(TheId);
  if (!Def)
    return InvalidId;
  return Def->ResultType;
}

/// Structural equality of declarations, ignoring the result id.
static bool sameDeclarationShape(const Instruction &A, const Instruction &B) {
  return A.Opcode == B.Opcode && A.ResultType == B.ResultType &&
         A.Operands == B.Operands;
}

Id Module::findExistingType(const Instruction &Inst) const {
  assert(isTypeDecl(Inst.Opcode) && "not a type declaration");
  for (const Instruction &Global : GlobalInsts)
    if (isTypeDecl(Global.Opcode) && sameDeclarationShape(Global, Inst))
      return Global.Result;
  return InvalidId;
}

Id Module::findExistingConstant(const Instruction &Inst) const {
  assert(isConstantDecl(Inst.Opcode) && "not a constant declaration");
  for (const Instruction &Global : GlobalInsts)
    if (isConstantDecl(Global.Opcode) && sameDeclarationShape(Global, Inst))
      return Global.Result;
  return InvalidId;
}

void Module::addGlobal(Instruction Inst) {
  assert(Inst.Result != InvalidId && "globals must have result ids");
  reserveId(Inst.Result);
  GlobalInsts.push_back(std::move(Inst));
}
