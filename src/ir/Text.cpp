//===- ir/Text.cpp - MiniSPV textual assembler / disassembler -------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Text.h"

#include <cerrno>
#include <limits>
#include <sstream>

using namespace spvfuzz;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

/// True if the literal operand at \p Index of \p Inst should be rendered as
/// a mnemonic rather than a number.
static bool isStorageClassOperand(const Instruction &Inst, size_t Index) {
  return (Inst.Opcode == Op::Variable || Inst.Opcode == Op::TypePointer) &&
         Index == 0;
}

static bool isControlMaskOperand(const Instruction &Inst, size_t Index) {
  return Inst.Opcode == Op::Function && Index == 0;
}

static void writeInstruction(std::ostringstream &Out, const Instruction &Inst) {
  if (Inst.Result != InvalidId)
    Out << "%" << Inst.Result << " = ";
  Out << opName(Inst.Opcode);
  if (Inst.ResultType != InvalidId)
    Out << " %" << Inst.ResultType;
  for (size_t I = 0, E = Inst.Operands.size(); I != E; ++I) {
    const Operand &Op = Inst.Operands[I];
    Out << " ";
    if (Op.isId()) {
      Out << "%" << Op.asId();
    } else if (isStorageClassOperand(Inst, I) &&
               Op.asLiteral() <= static_cast<uint32_t>(StorageClass::Output)) {
      // Out-of-range storage classes (only constructible by hand or by a
      // mutated disassembly) fall through to the numeric rendering so the
      // text round-trips instead of asserting.
      Out << storageClassName(static_cast<StorageClass>(Op.asLiteral()));
    } else if (isControlMaskOperand(Inst, I) &&
               (Op.asLiteral() == FC_None || Op.asLiteral() == FC_DontInline)) {
      Out << (Op.asLiteral() == FC_DontInline ? "DontInline" : "None");
    } else {
      Out << static_cast<int64_t>(static_cast<int32_t>(Op.asLiteral()));
    }
  }
  Out << "\n";
}

std::string spvfuzz::writeModuleText(const Module &M) {
  std::ostringstream Out;
  Out << "OpEntryPoint %" << M.EntryPointId << "\n";
  for (const Instruction &Inst : M.GlobalInsts)
    writeInstruction(Out, Inst);
  for (const Function &Func : M.Functions) {
    writeInstruction(Out, Func.Def);
    for (const Instruction &Param : Func.Params)
      writeInstruction(Out, Param);
    for (const BasicBlock &Block : Func.Blocks) {
      Out << "%" << Block.LabelId << " = OpLabel\n";
      for (const Instruction &Inst : Block.Body)
        writeInstruction(Out, Inst);
    }
    Out << "OpFunctionEnd\n";
  }
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

namespace {

/// A trivial whitespace tokenizer over one line; comments start with ';'.
struct LineTokens {
  std::vector<std::string> Tokens;

  explicit LineTokens(const std::string &Line) {
    std::istringstream In(Line);
    std::string Token;
    while (In >> Token) {
      if (Token[0] == ';')
        break;
      Tokens.push_back(Token);
    }
  }
};

} // namespace

static bool parseId(const std::string &Token, Id &Out) {
  if (Token.size() < 2 || Token[0] != '%')
    return false;
  uint64_t Value = 0;
  for (size_t I = 1; I < Token.size(); ++I) {
    if (!isdigit(static_cast<unsigned char>(Token[I])))
      return false;
    Value = Value * 10 + static_cast<uint64_t>(Token[I] - '0');
    if (Value > std::numeric_limits<Id>::max())
      return false;
  }
  Out = static_cast<Id>(Value);
  return Out != InvalidId;
}

static bool parseOperandToken(const std::string &Token, Operand &Out) {
  Id TheId;
  if (parseId(Token, TheId)) {
    Out = Operand::id(TheId);
    return true;
  }
  StorageClass SC;
  if (storageClassFromName(Token, SC)) {
    Out = Operand::literal(static_cast<uint32_t>(SC));
    return true;
  }
  if (Token == "None") {
    Out = Operand::literal(FC_None);
    return true;
  }
  if (Token == "DontInline") {
    Out = Operand::literal(FC_DontInline);
    return true;
  }
  // Signed decimal literal: anything a written module can contain, i.e.
  // int32 range (negative literals) widened to uint32 (raw words).
  const char *Begin = Token.c_str();
  char *End = nullptr;
  errno = 0;
  long long Value = strtoll(Begin, &End, 10);
  if (End != Begin + Token.size() || errno == ERANGE ||
      Value < std::numeric_limits<int32_t>::min() ||
      Value > static_cast<long long>(std::numeric_limits<uint32_t>::max()))
    return false;
  Out = Operand::literal(static_cast<uint32_t>(static_cast<int64_t>(Value)));
  return true;
}

bool spvfuzz::readModuleText(const std::string &Text, Module &MOut,
                             std::string &ErrorOut) {
  MOut = Module();
  MOut.Bound = 1;

  Function *CurrentFunc = nullptr;
  BasicBlock *CurrentBlock = nullptr;

  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    LineTokens Lexed(Line);
    std::vector<std::string> &Tokens = Lexed.Tokens;
    if (Tokens.empty())
      continue;

    auto Fail = [&](const std::string &Message) {
      ErrorOut = "line " + std::to_string(LineNo) + ": " + Message;
      return false;
    };

    // Result-bearing form: %N = OpFoo ...
    Id Result = InvalidId;
    size_t OpIndex = 0;
    if (Tokens.size() >= 3 && Tokens[1] == "=") {
      if (!parseId(Tokens[0], Result))
        return Fail("expected result id before '='");
      OpIndex = 2;
    }

    const std::string &Mnemonic = Tokens[OpIndex];
    if (Mnemonic == "OpEntryPoint") {
      if (Result != InvalidId)
        return Fail("OpEntryPoint cannot have a result id");
      if (OpIndex + 1 >= Tokens.size() ||
          !parseId(Tokens[OpIndex + 1], MOut.EntryPointId))
        return Fail("OpEntryPoint expects a function id");
      if (OpIndex + 2 != Tokens.size())
        return Fail("OpEntryPoint takes exactly one function id");
      continue;
    }
    if (Mnemonic == "OpFunctionEnd") {
      if (Result != InvalidId)
        return Fail("OpFunctionEnd cannot have a result id");
      if (OpIndex + 1 != Tokens.size())
        return Fail("OpFunctionEnd takes no operands");
      if (!CurrentFunc)
        return Fail("OpFunctionEnd outside a function");
      CurrentFunc = nullptr;
      CurrentBlock = nullptr;
      continue;
    }
    if (Mnemonic == "OpLabel") {
      if (!CurrentFunc)
        return Fail("OpLabel outside a function");
      if (Result == InvalidId)
        return Fail("OpLabel requires a result id");
      if (OpIndex + 1 != Tokens.size())
        return Fail("OpLabel takes no operands");
      MOut.reserveId(Result);
      CurrentFunc->Blocks.emplace_back(Result);
      CurrentBlock = &CurrentFunc->Blocks.back();
      continue;
    }

    Op Opcode;
    if (!opFromName(Mnemonic, Opcode))
      return Fail("unknown opcode '" + Mnemonic + "'");

    Instruction Inst;
    Inst.Opcode = Opcode;
    Inst.Result = Result;
    size_t Cursor = OpIndex + 1;
    if (hasResultType(Opcode)) {
      if (Cursor >= Tokens.size() || !parseId(Tokens[Cursor], Inst.ResultType))
        return Fail("expected result type id");
      ++Cursor;
    }
    for (; Cursor < Tokens.size(); ++Cursor) {
      Operand Op;
      if (!parseOperandToken(Tokens[Cursor], Op))
        return Fail("bad operand '" + Tokens[Cursor] + "'");
      Inst.Operands.push_back(Op);
    }
    if (hasResult(Opcode) && Result == InvalidId)
      return Fail(std::string(opName(Opcode)) + " requires a result id");
    if (!hasResult(Opcode) && Result != InvalidId)
      return Fail(std::string(opName(Opcode)) + " cannot have a result id");
    if (Result != InvalidId)
      MOut.reserveId(Result);
    Inst.forEachUsedId([&](Id Used) { MOut.reserveId(Used); });

    if (Opcode == Op::Function) {
      if (CurrentFunc)
        return Fail("nested OpFunction");
      MOut.Functions.emplace_back();
      CurrentFunc = &MOut.Functions.back();
      CurrentFunc->Def = Inst;
      CurrentBlock = nullptr;
      continue;
    }
    if (Opcode == Op::FunctionParameter) {
      if (!CurrentFunc || CurrentBlock)
        return Fail("OpFunctionParameter must directly follow OpFunction");
      CurrentFunc->Params.push_back(Inst);
      continue;
    }
    if (!CurrentFunc) {
      if (!isTypeDecl(Opcode) && !isConstantDecl(Opcode) &&
          Opcode != Op::Variable)
        return Fail("instruction outside a function");
      MOut.GlobalInsts.push_back(Inst);
      continue;
    }
    if (!CurrentBlock)
      return Fail("instruction before first OpLabel");
    CurrentBlock->Body.push_back(Inst);
  }

  if (CurrentFunc) {
    ErrorOut =
        "line " + std::to_string(LineNo) + ": unterminated function at end of input";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Diffing
//===----------------------------------------------------------------------===//

std::string spvfuzz::diffModuleText(const Module &Before, const Module &After) {
  auto SplitLines = [](const std::string &Text) {
    std::vector<std::string> Lines;
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);
    return Lines;
  };
  std::vector<std::string> A = SplitLines(writeModuleText(Before));
  std::vector<std::string> B = SplitLines(writeModuleText(After));

  // Longest-common-subsequence diff; module texts are small enough for the
  // quadratic table.
  size_t N = A.size(), M = B.size();
  std::vector<std::vector<uint32_t>> Lcs(N + 1,
                                         std::vector<uint32_t>(M + 1, 0));
  for (size_t I = N; I-- > 0;)
    for (size_t J = M; J-- > 0;)
      Lcs[I][J] = A[I] == B[J] ? Lcs[I + 1][J + 1] + 1
                               : std::max(Lcs[I + 1][J], Lcs[I][J + 1]);

  std::ostringstream Out;
  size_t I = 0, J = 0;
  while (I < N && J < M) {
    if (A[I] == B[J]) {
      ++I;
      ++J;
    } else if (Lcs[I + 1][J] >= Lcs[I][J + 1]) {
      Out << "- " << A[I++] << "\n";
    } else {
      Out << "+ " << B[J++] << "\n";
    }
  }
  while (I < N)
    Out << "- " << A[I++] << "\n";
  while (J < M)
    Out << "+ " << B[J++] << "\n";
  return Out.str();
}
