//===- ir/Opcode.cpp - MiniSPV opcodes and classification -----------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>
#include <unordered_map>

using namespace spvfuzz;

namespace {

struct OpInfo {
  Op Opcode;
  const char *Name;
};

const OpInfo OpTable[] = {
    {Op::TypeVoid, "OpTypeVoid"},
    {Op::TypeBool, "OpTypeBool"},
    {Op::TypeInt, "OpTypeInt"},
    {Op::TypeVector, "OpTypeVector"},
    {Op::TypeStruct, "OpTypeStruct"},
    {Op::TypePointer, "OpTypePointer"},
    {Op::TypeFunction, "OpTypeFunction"},
    {Op::ConstantTrue, "OpConstantTrue"},
    {Op::ConstantFalse, "OpConstantFalse"},
    {Op::Constant, "OpConstant"},
    {Op::ConstantComposite, "OpConstantComposite"},
    {Op::Variable, "OpVariable"},
    {Op::Load, "OpLoad"},
    {Op::Store, "OpStore"},
    {Op::IAdd, "OpIAdd"},
    {Op::ISub, "OpISub"},
    {Op::IMul, "OpIMul"},
    {Op::SDiv, "OpSDiv"},
    {Op::SMod, "OpSMod"},
    {Op::SNegate, "OpSNegate"},
    {Op::LogicalAnd, "OpLogicalAnd"},
    {Op::LogicalOr, "OpLogicalOr"},
    {Op::LogicalNot, "OpLogicalNot"},
    {Op::IEqual, "OpIEqual"},
    {Op::INotEqual, "OpINotEqual"},
    {Op::SLessThan, "OpSLessThan"},
    {Op::SLessThanEqual, "OpSLessThanEqual"},
    {Op::SGreaterThan, "OpSGreaterThan"},
    {Op::SGreaterThanEqual, "OpSGreaterThanEqual"},
    {Op::Select, "OpSelect"},
    {Op::CopyObject, "OpCopyObject"},
    {Op::CompositeConstruct, "OpCompositeConstruct"},
    {Op::CompositeExtract, "OpCompositeExtract"},
    {Op::Phi, "OpPhi"},
    {Op::Branch, "OpBranch"},
    {Op::BranchConditional, "OpBranchConditional"},
    {Op::Return, "OpReturn"},
    {Op::ReturnValue, "OpReturnValue"},
    {Op::Kill, "OpKill"},
    {Op::Function, "OpFunction"},
    {Op::FunctionParameter, "OpFunctionParameter"},
    {Op::FunctionCall, "OpFunctionCall"},
};

} // namespace

const char *spvfuzz::opName(Op Opcode) {
  for (const OpInfo &Info : OpTable)
    if (Info.Opcode == Opcode)
      return Info.Name;
  assert(false && "unknown opcode");
  return "OpUnknown";
}

bool spvfuzz::opFromName(const std::string &Name, Op &Out) {
  for (const OpInfo &Info : OpTable) {
    if (Name == Info.Name) {
      Out = Info.Opcode;
      return true;
    }
  }
  return false;
}

bool spvfuzz::isTypeDecl(Op Opcode) {
  switch (Opcode) {
  case Op::TypeVoid:
  case Op::TypeBool:
  case Op::TypeInt:
  case Op::TypeVector:
  case Op::TypeStruct:
  case Op::TypePointer:
  case Op::TypeFunction:
    return true;
  default:
    return false;
  }
}

bool spvfuzz::isConstantDecl(Op Opcode) {
  switch (Opcode) {
  case Op::ConstantTrue:
  case Op::ConstantFalse:
  case Op::Constant:
  case Op::ConstantComposite:
    return true;
  default:
    return false;
  }
}

bool spvfuzz::isTerminator(Op Opcode) {
  switch (Opcode) {
  case Op::Branch:
  case Op::BranchConditional:
  case Op::Return:
  case Op::ReturnValue:
  case Op::Kill:
    return true;
  default:
    return false;
  }
}

bool spvfuzz::hasResult(Op Opcode) {
  switch (Opcode) {
  case Op::Store:
  case Op::Branch:
  case Op::BranchConditional:
  case Op::Return:
  case Op::ReturnValue:
  case Op::Kill:
    return false;
  default:
    return true;
  }
}

bool spvfuzz::hasResultType(Op Opcode) {
  if (!hasResult(Opcode))
    return false;
  // Type declarations have result ids but no result type.
  return !isTypeDecl(Opcode);
}

bool spvfuzz::isCommutativeBinOp(Op Opcode) {
  switch (Opcode) {
  case Op::IAdd:
  case Op::IMul:
  case Op::LogicalAnd:
  case Op::LogicalOr:
  case Op::IEqual:
  case Op::INotEqual:
    return true;
  default:
    return false;
  }
}

bool spvfuzz::isIntBinOp(Op Opcode) {
  switch (Opcode) {
  case Op::IAdd:
  case Op::ISub:
  case Op::IMul:
  case Op::SDiv:
  case Op::SMod:
    return true;
  default:
    return false;
  }
}

bool spvfuzz::isIntComparison(Op Opcode) {
  switch (Opcode) {
  case Op::IEqual:
  case Op::INotEqual:
  case Op::SLessThan:
  case Op::SLessThanEqual:
  case Op::SGreaterThan:
  case Op::SGreaterThanEqual:
    return true;
  default:
    return false;
  }
}

bool spvfuzz::isSideEffectFree(Op Opcode) {
  switch (Opcode) {
  case Op::Load: // loads are pure in MiniSPV (no volatile semantics)
  case Op::IAdd:
  case Op::ISub:
  case Op::IMul:
  case Op::SDiv:
  case Op::SMod:
  case Op::SNegate:
  case Op::LogicalAnd:
  case Op::LogicalOr:
  case Op::LogicalNot:
  case Op::IEqual:
  case Op::INotEqual:
  case Op::SLessThan:
  case Op::SLessThanEqual:
  case Op::SGreaterThan:
  case Op::SGreaterThanEqual:
  case Op::Select:
  case Op::CopyObject:
  case Op::CompositeConstruct:
  case Op::CompositeExtract:
  case Op::Phi:
    return true;
  default:
    return false;
  }
}

const char *spvfuzz::storageClassName(StorageClass SC) {
  switch (SC) {
  case StorageClass::Function:
    return "Function";
  case StorageClass::Private:
    return "Private";
  case StorageClass::Uniform:
    return "Uniform";
  case StorageClass::Output:
    return "Output";
  }
  assert(false && "unknown storage class");
  return "Unknown";
}

bool spvfuzz::storageClassFromName(const std::string &Name, StorageClass &Out) {
  static const std::unordered_map<std::string, StorageClass> Table = {
      {"Function", StorageClass::Function},
      {"Private", StorageClass::Private},
      {"Uniform", StorageClass::Uniform},
      {"Output", StorageClass::Output},
  };
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}
