//===- ir/InstructionDescriptor.h - Locating instructions ------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifies an instruction relative to a nearby result id rather than by
/// (block, offset). This is the device the paper's §2.3 "maximize
/// independence" principle calls for: a transformation that targets an
/// instruction stays applicable when independent transformations insert or
/// remove other instructions around it.
///
/// A descriptor {Base, Opcode, Skip} denotes the Skip-th instruction
/// (0-based) with opcode Opcode at-or-after the instruction defining Base,
/// within the same basic block. Base may also be a block label id, in which
/// case the search starts at the beginning of that block.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INSTRUCTIONDESCRIPTOR_H
#define IR_INSTRUCTIONDESCRIPTOR_H

#include "ir/Module.h"

namespace spvfuzz {

struct InstructionDescriptor {
  Id Base = InvalidId;
  Op TargetOpcode = Op::Return;
  uint32_t Skip = 0;

  bool operator==(const InstructionDescriptor &Other) const {
    return Base == Other.Base && TargetOpcode == Other.TargetOpcode &&
           Skip == Other.Skip;
  }
};

/// The result of resolving a descriptor against a module.
struct LocatedInstruction {
  Function *Func = nullptr;
  BasicBlock *Block = nullptr;
  size_t Index = 0; // index into Block->Body

  bool valid() const { return Block != nullptr; }
  Instruction &instruction() {
    assert(valid() && "dereferencing an invalid location");
    return Block->Body[Index];
  }
};

/// Resolves \p Desc against \p M. Returns an invalid location when the base
/// id does not exist, is not inside a function body, or no matching
/// instruction follows it in its block.
LocatedInstruction locateInstruction(Module &M,
                                     const InstructionDescriptor &Desc);

/// Builds a descriptor for the instruction at \p Index of \p Block, using
/// the nearest preceding (or same) instruction with a result id as the
/// base, or the block label if there is none.
InstructionDescriptor describeInstruction(const BasicBlock &Block,
                                          size_t Index);

} // namespace spvfuzz

#endif // IR_INSTRUCTIONDESCRIPTOR_H
