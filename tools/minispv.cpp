//===- tools/minispv.cpp - Command-line driver ------------------*- C++ -*-===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A file-based driver over the library, mirroring the spirv-fuzz /
/// spirv-reduce command-line workflow:
///
///   minispv gen      --seed N -o prog.mvs [--inputs prog.in]
///   minispv validate prog.mvs
///   minispv run      prog.mvs --inputs prog.in [--target NAME]
///   minispv fuzz     prog.mvs --inputs prog.in --seed N -o variant.mvs
///                    --sequence seq.txt [--donor donor.mvs]... [--baseline]
///   minispv replay   prog.mvs --inputs prog.in --sequence seq.txt
///                    -o variant.mvs
///   minispv reduce   prog.mvs --inputs prog.in --sequence seq.txt
///                    --target NAME (--signature SIG | --miscompilation)
///                    -o reduced.mvs --out-sequence min.txt
///                    [--order paper|learned] [--post-reduce]
///                    [--post-passes P1,P2,...] [--out-original FILE]
///   minispv campaign [--jobs N] [--tests N] [--seed N] [--limit N]
///                    [--deadline-ms N] [--faulty-fleet]
///                    [--deadline-steps N] [--flaky-retries N]
///                    [--quarantine-threshold N] [--dedup]
///                    [--reduce-order paper|learned] [--post-reduce]
///                    [--post-passes P1,P2,...]
///                    [--store DIR [--resume] [--checkpoint-interval N]
///                     [--deterministic-journal] [--triage]]
///   minispv serve    --store DIR [--workers K] [--worker-jobs N]
///                    [--lease-ttl-ms N] [--kill-worker-after N]
///                    [--minispv PATH] [+ campaign flags except
///                    --deadline-ms]
///   minispv worker   --store DIR --worker-id N [--jobs N]
///                    [--max-shards N] [--abandon-after N]
///                    [--truncate-last-result]
///   minispv triage   --store DIR [--jobs N] [--exec lowered|tree]
///   minispv targets  [--faulty-fleet]
///   minispv report   (metrics.json... | --store DIR) [--trace t.jsonl]
///   minispv report   --compare BASE.json CURRENT.json
///                    [--regression-threshold PCT] [--warn-only]
///   minispv top      <store> [--once] [--interval-ms N] [--timeout-ms N]
///   minispv tail     <store> [--follow] [--json] [--interval-ms N]
///                    [--timeout-ms N]
///   minispv db       list  --store DIR
///   minispv db       show  <bucket> --store DIR
///   minispv db       diff  <bucket> --store DIR
///   minispv db       gc    --store DIR --budget BYTES
///   minispv db       merge --store DIR (--from DIR2 | --from-dir DIR)
///
/// `campaign --store` makes the run durable: the engine checkpoints at
/// wave boundaries, every reduced reproducer lands in the store's bug
/// database, and an interrupted campaign rerun with `--resume` continues
/// where it stopped — with byte-identical stdout to an uninterrupted run.
/// `db` is the cross-campaign triage CLI over such a store.
///
/// `serve` is the multi-process form of `campaign --store`: the
/// coordinator spawns K `worker` processes that lease scheduling waves
/// from a crash-safe ledger under the store (see serve/LeaseLedger.h) and
/// folds their results back serially — stdout, the bug database, the
/// decision journal and the metrics counters are byte-identical to the
/// single-process run, even when a worker is killed mid-wave.
/// Module files use the textual assembly of ir/Text.h; input files hold
/// one "binding kind value" triple per line (e.g. "0 int 7", "2 bool
/// true"); sequence files hold one serialized transformation per line.
///
/// Every command accepts `--metrics-out m.json` (write a telemetry metrics
/// dump on exit) and `--trace-out t.jsonl` (stream span/event records);
/// `minispv report` renders a metrics dump as a table, `report --trace`
/// a per-phase/per-target time breakdown, and `report --compare` a bench
/// regression verdict (exit 4 on regression).
///
/// `campaign --store` also appends a typed event journal to
/// DIR/journal/events.jsonl at every serial commit point; `top` renders a
/// live single-screen summary from it and `tail --follow` streams it while
/// the campaign runs. The journal's decision events are identical at any
/// `--jobs` count; `--deterministic-journal` additionally zeroes the
/// wall-clock stamps so whole files diff byte-identical.
///
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "campaign/Campaign.h"
#include "campaign/CampaignEngine.h"
#include "core/Fuzzer.h"
#include "core/Reducer.h"
#include "core/ReductionPipeline.h"
#include "gen/Generator.h"
#include "ir/Text.h"
#include "obs/BenchCompare.h"
#include "obs/Journal.h"
#include "obs/Monitor.h"
#include "obs/TraceReport.h"
#include "serve/Coordinator.h"
#include "serve/Worker.h"
#include "store/CampaignStore.h"
#include "support/Telemetry.h"
#include "triage/Triage.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <fstream>
#include <sstream>
#include <thread>

using namespace spvfuzz;

namespace {

[[noreturn]] void fail(const std::string &Message) {
  fprintf(stderr, "minispv: error: %s\n", Message.c_str());
  exit(1);
}

/// The minispv exit-code contract (see `minispv help`), shared by every
/// subcommand that distinguishes outcomes: distinct so CI can tell "bad
/// input" from "input missing" from "timed out" from "bench regression".
enum ObsExit : int {
  ObsExitParseError = 1,
  ObsExitMissingInput = 2,
  ObsExitTimeout = 3,
  ObsExitRegression = 4,
};

[[noreturn]] void failWithCode(int Code, const std::string &Message) {
  fprintf(stderr, "minispv: error: %s\n", Message.c_str());
  exit(Code);
}

/// Like readFile, but a missing/unreadable file is a distinct exit code
/// (the report/monitoring commands must not blur it into a parse error).
std::string readFileOrExit(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    failWithCode(ObsExitMissingInput,
                 "cannot open '" + Path + "' (missing or unreadable)");
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    fail("cannot open '" + Path + "'");
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  if (!Out)
    fail("cannot write '" + Path + "'");
  Out << Contents;
}

Module readModule(const std::string &Path) {
  Module M;
  std::string Error;
  if (!readModuleText(readFile(Path), M, Error))
    fail(Path + ": " + Error);
  return M;
}

ShaderInput readInputs(const std::string &Path) {
  ShaderInput Input;
  std::istringstream In(readFile(Path));
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::istringstream Fields(Line);
    auto failLine = [&](const std::string &Message) {
      fail(Path + ": line " + std::to_string(LineNo) + ": " + Message);
    };
    std::string First;
    if (!(Fields >> First))
      continue; // blank line
    uint32_t Binding;
    {
      // The binding must be a bare non-negative integer; "abc int 3" used
      // to be skipped as if it were blank.
      char *End = nullptr;
      unsigned long Parsed = strtoul(First.c_str(), &End, 10);
      if (End == First.c_str() || *End != '\0')
        failLine("expected a numeric binding, got '" + First + "'");
      Binding = static_cast<uint32_t>(Parsed);
    }
    std::string Kind, ValueText;
    if (!(Fields >> Kind >> ValueText))
      failLine("expected 'binding kind value'");
    std::string Trailing;
    if (Fields >> Trailing)
      failLine("trailing garbage '" + Trailing + "'");
    if (Kind == "int") {
      char *End = nullptr;
      long long Parsed = strtoll(ValueText.c_str(), &End, 10);
      if (End == ValueText.c_str() || *End != '\0')
        failLine("expected an integer value, got '" + ValueText + "'");
      Input.Bindings[Binding] = Value::makeInt(static_cast<int32_t>(Parsed));
    } else if (Kind == "bool") {
      if (ValueText != "true" && ValueText != "false")
        failLine("expected 'true' or 'false', got '" + ValueText + "'");
      Input.Bindings[Binding] = Value::makeBool(ValueText == "true");
    } else {
      failLine("unknown kind '" + Kind + "'");
    }
  }
  return Input;
}

std::string formatInputs(const ShaderInput &Input) {
  std::ostringstream Out;
  for (const auto &[Binding, V] : Input.Bindings) {
    if (V.ValueKind == Value::Kind::Bool)
      Out << Binding << " bool " << (V.asBool() ? "true" : "false") << "\n";
    else
      Out << Binding << " int " << V.asInt() << "\n";
  }
  return Out.str();
}

TransformationSequence readSequence(const std::string &Path) {
  TransformationSequence Sequence;
  std::string Error;
  if (!deserializeSequence(readFile(Path), Sequence, Error))
    fail(Path + ": " + Error);
  return Sequence;
}

/// The fleet a command works over: TargetFleet::faulty() with
/// --faulty-fleet, TargetFleet::standard() otherwise.
TargetFleet fleetFor(bool Faulty) {
  return Faulty ? TargetFleet::faulty() : TargetFleet::standard();
}

const Target *findTarget(const TargetFleet &Fleet, const std::string &Name) {
  if (const Target *T = Fleet.find(Name))
    return T;
  fail("unknown target '" + Name + "' (see 'minispv targets')");
}

/// Minimal flag parser: positional arguments plus --name [value] pairs.
struct Args {
  std::vector<std::string> Positional;
  std::vector<std::pair<std::string, std::string>> Flags;

  Args(int Argc, char **Argv, const std::vector<std::string> &BoolFlags) {
    for (int I = 0; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg.empty() || Arg[0] != '-') {
        Positional.push_back(Arg);
        continue;
      }
      std::string Name = Arg.substr(Arg.rfind("--", 0) == 0 ? 2 : 1);
      bool IsBool = std::find(BoolFlags.begin(), BoolFlags.end(), Name) !=
                    BoolFlags.end();
      if (IsBool) {
        Flags.push_back({Name, "true"});
      } else {
        if (I + 1 >= Argc)
          fail("flag --" + Name + " needs a value");
        Flags.push_back({Name, Argv[++I]});
      }
    }
  }

  std::string get(const std::string &Name,
                  const std::string &Default = "") const {
    for (const auto &[FlagName, FlagValue] : Flags)
      if (FlagName == Name)
        return FlagValue;
    return Default;
  }
  std::vector<std::string> getAll(const std::string &Name) const {
    std::vector<std::string> Out;
    for (const auto &[FlagName, FlagValue] : Flags)
      if (FlagName == Name)
        Out.push_back(FlagValue);
    return Out;
  }
  bool has(const std::string &Name) const {
    return !get(Name, "\x01").empty() && get(Name, "\x01") != "\x01";
  }
  std::string require(const std::string &Name) const {
    std::string FlagValue = get(Name);
    if (FlagValue.empty())
      fail("missing required flag --" + Name);
    return FlagValue;
  }
};

int cmdGen(const Args &A) {
  uint64_t Seed = strtoull(A.get("seed", "0").c_str(), nullptr, 10);
  GeneratedProgram Program = generateProgram(Seed);
  std::string OutPath = A.require("o");
  writeFile(OutPath, writeModuleText(Program.M));
  std::string InputsPath = A.get("inputs", OutPath + ".in");
  writeFile(InputsPath, formatInputs(Program.Input));
  printf("wrote %s (%zu instructions) and %s\n", OutPath.c_str(),
         Program.M.instructionCount(), InputsPath.c_str());
  return 0;
}

int cmdValidate(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv validate <module.mvs>");
  Module M = readModule(A.Positional[0]);
  std::vector<std::string> Diags = validateModule(M);
  if (Diags.empty()) {
    printf("%s: valid (%zu instructions, %zu functions)\n",
           A.Positional[0].c_str(), M.instructionCount(),
           M.Functions.size());
    return 0;
  }
  for (const std::string &Diag : Diags)
    fprintf(stderr, "%s: %s\n", A.Positional[0].c_str(), Diag.c_str());
  return 1;
}

int cmdRun(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv run <module.mvs> --inputs <file> [--target NAME] "
         "[--exec lowered|tree]");
  Module M = readModule(A.Positional[0]);
  ShaderInput Input = readInputs(A.require("inputs"));
  ExecEngine Engine = ExecEngine::Lowered;
  if (A.has("exec") && !execEngineFromName(A.get("exec"), Engine))
    fail("unknown execution engine '" + A.get("exec") +
         "' (expected lowered or tree)");
  if (!A.has("target")) {
    // Output is engine-independent by the Executable equivalence
    // contract, so `--exec tree` diffs cleanly against the default.
    std::shared_ptr<const Executable> Exe =
        Executable::compile(std::move(M), Engine);
    ExecResult Result = Exe->run(Input);
    printf("reference semantics: %s\n", Result.str().c_str());
    return Result.ExecStatus == ExecResult::Status::Fault ? 1 : 0;
  }
  TargetFleet Fleet = fleetFor(A.has("faulty-fleet"));
  const Target *T = findTarget(Fleet, A.get("target"));
  RunContext Ctx;
  Ctx.Engine = Engine;
  TargetRun Run = T->run(M, Input, Ctx);
  if (Run.interesting()) {
    printf("%s: %s: %s\n", T->name().c_str(),
           Run.RunOutcome == Outcome::Timeout ? "TIMEOUT" : "CRASH",
           Run.Signature.c_str());
    return 2;
  }
  if (Run.RunOutcome == Outcome::ToolError) {
    printf("%s: TOOL ERROR (infrastructure noise, not a bug)\n",
           T->name().c_str());
    return 3;
  }
  if (!T->canExecute()) {
    printf("%s: compiled OK (crash-only target, no execution)\n",
           T->name().c_str());
    return 0;
  }
  printf("%s: %s\n", T->name().c_str(), Run.Result.str().c_str());
  return 0;
}

int cmdFuzz(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv fuzz <module.mvs> --inputs <file> --seed N "
         "-o <out> --sequence <out> [--donor <file>]... [--baseline]");
  Module M = readModule(A.Positional[0]);
  ShaderInput Input = readInputs(A.require("inputs"));
  uint64_t Seed = strtoull(A.get("seed", "0").c_str(), nullptr, 10);

  std::vector<Module> DonorModules;
  for (const std::string &Path : A.getAll("donor"))
    DonorModules.push_back(readModule(Path));
  std::vector<const Module *> Donors;
  for (const Module &Donor : DonorModules)
    Donors.push_back(&Donor);

  FuzzerOptions Options;
  Options.TransformationLimit = static_cast<uint32_t>(
      strtoul(A.get("limit", "2000").c_str(), nullptr, 10));
  if (A.has("baseline")) {
    Options.Profile = FuzzerProfile::Baseline;
    Options.EnableRecommendations = false;
  }
  if (A.has("no-recommendations"))
    Options.EnableRecommendations = false;

  FuzzResult Result = fuzz(M, Input, Donors, Seed, Options);
  writeFile(A.require("o"), writeModuleText(Result.Variant));
  writeFile(A.require("sequence"), serializeSequence(Result.Sequence));
  printf("applied %zu transformations: %zu -> %zu instructions\n",
         Result.Sequence.size(), M.instructionCount(),
         Result.Variant.instructionCount());
  return 0;
}

int cmdReplay(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv replay <module.mvs> --inputs <file> "
         "--sequence <file> -o <out>");
  Module M = readModule(A.Positional[0]);
  ShaderInput Input = readInputs(A.require("inputs"));
  TransformationSequence Sequence = readSequence(A.require("sequence"));
  FactManager Facts;
  Facts.setKnownInput(Input);
  std::vector<size_t> Applied = applySequence(M, Facts, Sequence);
  writeFile(A.require("o"), writeModuleText(M));
  printf("applied %zu of %zu transformations\n", Applied.size(),
         Sequence.size());
  return 0;
}

/// Shared by `reduce` and `campaign`: parses --order/--reduce-order and
/// --post-passes, failing with the known-name list on a typo.
CandidateOrder parseOrderFlag(const Args &A, const char *Flag) {
  CandidateOrder Order = CandidateOrder::Paper;
  if (A.has(Flag) && !candidateOrderFromName(A.get(Flag), Order))
    fail("unknown candidate order '" + A.get(Flag) +
         "' (expected paper or learned)");
  return Order;
}

std::vector<std::string> parsePostPasses(const Args &A) {
  std::vector<std::string> Passes;
  if (!A.has("post-passes"))
    return Passes;
  std::stringstream List(A.get("post-passes"));
  std::string Name;
  while (std::getline(List, Name, ',')) {
    if (Name.empty())
      continue;
    if (!findPostReducePass(Name)) {
      std::string Known;
      for (const ReductionPassPtr &Pass : standardPostReducePasses())
        Known += std::string(Known.empty() ? "" : ", ") + Pass->name();
      fail("unknown post-reduction pass '" + Name + "' (known: " + Known +
           ")");
    }
    Passes.push_back(Name);
  }
  return Passes;
}

int cmdReduce(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv reduce <module.mvs> --inputs <file> "
         "--sequence <file> --target NAME (--signature SIG | "
         "--miscompilation) -o <out> --out-sequence <out> "
         "[--jobs N] [--order paper|learned] [--post-reduce] "
         "[--post-passes P1,P2,...] [--out-original FILE] "
         "[--snapshot-interval N] [--snapshot-budget BYTES]");
  Module M = readModule(A.Positional[0]);
  ShaderInput Input = readInputs(A.require("inputs"));
  TransformationSequence Sequence = readSequence(A.require("sequence"));
  TargetFleet Fleet = fleetFor(A.has("faulty-fleet"));
  const Target *T = findTarget(Fleet, A.require("target"));

  InterestingnessTest Test =
      A.has("miscompilation")
          ? makeMiscompilationInterestingness(*T, M, Input)
          : makeCrashInterestingness(*T, A.require("signature"), Input);

  // Snapshot/jobs are performance knobs: every setting reduces to the same
  // result. Order and post-reduce change which result — deterministically,
  // still independent of the job count.
  ReductionPlan Plan;
  Plan.SnapshotInterval = strtoull(
      A.get("snapshot-interval", "8").c_str(), nullptr, 10);
  Plan.SnapshotBudgetBytes = strtoull(
      A.get("snapshot-budget", "67108864").c_str(), nullptr, 10);
  Plan.ShrinkFunctions = true;
  size_t Jobs = strtoull(A.get("jobs", "1").c_str(), nullptr, 10);
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs != 1) {
    Pool = std::make_unique<ThreadPool>(Jobs);
    Plan.Pool = Pool.get();
  }
  Plan.Order = parseOrderFlag(A, "order");
  Plan.PostReduce = A.has("post-reduce") || A.has("post-passes");
  Plan.PostPasses = parsePostPasses(A);

  ReduceResult Reduced =
      ReductionPipeline(Plan).run(M, Input, Sequence, Test);

  writeFile(A.require("o"), writeModuleText(Reduced.ReducedVariant));
  writeFile(A.require("out-sequence"),
            serializeSequence(Reduced.Minimized));
  if (A.has("out-original"))
    writeFile(A.require("out-original"),
              writeModuleText(Reduced.PostStats.empty()
                                  ? M
                                  : Reduced.ReducedOriginal));
  if (Reduced.PostStats.empty()) {
    printf("reduced to %zu transformations in %zu checks; delta vs "
           "original: %+ld instructions\n",
           Reduced.Minimized.size(), Reduced.Checks,
           static_cast<long>(Reduced.ReducedVariant.instructionCount()) -
               static_cast<long>(M.instructionCount()));
  } else {
    size_t PostChecks = 0;
    for (const PostReducePassStats &Stat : Reduced.PostStats)
      PostChecks += Stat.Checks;
    printf("reduced to %zu transformations in %zu checks (%zu sequence + "
           "%zu post-reduce); delta vs original: %+ld instructions\n",
           Reduced.Minimized.size(), Reduced.Checks,
           Reduced.Checks - PostChecks, PostChecks,
           static_cast<long>(Reduced.ReducedVariant.instructionCount()) -
               static_cast<long>(M.instructionCount()));
    for (const PostReducePassStats &Stat : Reduced.PostStats)
      printf("  post-reduce %s: accepted %zu/%zu in %zu checks\n",
             Stat.Pass.c_str(), Stat.Accepted, Stat.Attempted, Stat.Checks);
    printf("  reference: %zu -> %zu instructions\n", M.instructionCount(),
           Reduced.ReducedOriginal.instructionCount());
  }
  printf("--- original vs reduced variant ---\n%s",
         diffModuleText(M, Reduced.ReducedVariant).c_str());
  return 0;
}

/// One triaged bucket: the store entry plus its freshly computed (and
/// persisted) attribution.
struct TriagedBucket {
  BugBucket Bucket;
  triage::BugAttribution Attr;
};

/// Attributes every bug bucket in \p Store against \p Fleet: loads each
/// reduced reproducer, runs pass-sequence bisection / differential
/// localization, persists the verdict into the bucket (ATTR section +
/// meta.json) and prints one `triage:` line per bucket. Bucket order is
/// the store's aggregated (sorted) order and attributeAll commits results
/// in item order, so the printout is byte-identical at any job count.
std::vector<TriagedBucket>
runTriageOverStore(CampaignStore &Store, const TargetFleet &Fleet,
                   const triage::TriageOptions &Options) {
  std::vector<BugBucket> Buckets = Store.aggregatedBuckets();
  std::vector<triage::TriageItem> Items;
  std::vector<size_t> ItemBucket;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Module Original, Reduced;
    ShaderInput Input;
    TransformationSequence Minimized;
    std::string Error;
    if (!Store.loadReproducer(Buckets[I], Original, Input, Reduced,
                              Minimized, Error)) {
      fprintf(stderr, "triage: skipping %s: %s\n", Buckets[I].Dir.c_str(),
              Error.c_str());
      continue;
    }
    triage::TriageItem Item;
    Item.TargetName = Buckets[I].Target;
    Item.Signature = Buckets[I].Signature;
    Item.Repro = std::move(Reduced);
    Item.Input = std::move(Input);
    Items.push_back(std::move(Item));
    ItemBucket.push_back(I);
  }
  std::vector<triage::BugAttribution> Attrs =
      triage::attributeAll(Fleet, Items, Options);
  std::vector<TriagedBucket> Out;
  for (size_t I = 0; I < Attrs.size(); ++I) {
    const BugBucket &Bucket = Buckets[ItemBucket[I]];
    std::string Error;
    if (!Store.recordAttribution(Bucket, Attrs[I], Error))
      fail(Bucket.Dir + ": " + Error);
    printf("triage: %-14s sig=%-24s -> %-22s checks=%u runs=%u\n",
           Bucket.Target.c_str(), Bucket.Signature.c_str(),
           Attrs[I].culpritLabel().c_str(), Attrs[I].BisectionChecks,
           Attrs[I].PassRuns + Attrs[I].LocalizationRuns);
    Out.push_back({Bucket, Attrs[I]});
  }
  return Out;
}

/// `campaign` and `serve` share this driver; Serve swaps the wave
/// computation out to a ServeCoordinator while every decision-bearing
/// line of the run stays identical.
int cmdCampaign(const Args &A, bool Serve) {
  size_t Jobs = strtoull(A.get("jobs", "1").c_str(), nullptr, 10);
  if (Serve && A.has("deadline-ms"))
    fail("--deadline-ms is not supported in serve mode (deadline-truncated "
         "runs are not deterministic across worker counts)");
  ExecutionPolicy Policy =
      ExecutionPolicy{}
          .withJobs(Jobs)
          .withSeed(strtoull(A.get("seed", "2021").c_str(), nullptr, 10))
          .withTransformationLimit(static_cast<uint32_t>(
              strtoul(A.get("limit", "250").c_str(), nullptr, 10)))
          .withDeadline(std::chrono::milliseconds(
              strtoull(A.get("deadline-ms", "0").c_str(), nullptr, 10)));
  if (A.has("deadline-steps"))
    Policy.withTargetDeadlineSteps(
        strtoull(A.get("deadline-steps").c_str(), nullptr, 10));
  if (A.has("flaky-retries"))
    Policy.withFlakyRetries(static_cast<uint32_t>(
        strtoul(A.get("flaky-retries").c_str(), nullptr, 10)));
  if (A.has("quarantine-threshold"))
    Policy.withQuarantineThreshold(static_cast<uint32_t>(
        strtoul(A.get("quarantine-threshold").c_str(), nullptr, 10)));
  if (A.has("exec")) {
    ExecEngine Engine = ExecEngine::Lowered;
    if (!execEngineFromName(A.get("exec"), Engine))
      fail("unknown execution engine '" + A.get("exec") +
           "' (expected lowered or tree)");
    Policy.withEngine(Engine);
  }
  if (A.has("uniform-inputs"))
    Policy.withUniformInputs(
        strtoull(A.get("uniform-inputs").c_str(), nullptr, 10));
  // Reduction-quality knobs: both change results (deterministically) and
  // therefore fold into the campaign id when non-default.
  Policy.withReduceOrder(parseOrderFlag(A, "reduce-order"));
  if (A.has("post-reduce") || A.has("post-passes"))
    Policy.withPostReduce(true).withPostReducePasses(parsePostPasses(A));
  // --triage attributes every stored bug to its culprit pass after the
  // run. It is a post-pass over the bug database (so it needs --store)
  // and does not fold into the campaign id: the bug-finding decisions
  // are unchanged, and an existing store can be re-triaged on resume.
  Policy.withTriage(A.has("triage"));

  // A store makes the run durable: checkpoints at wave boundaries plus the
  // reproducer database. Metrics are forced on so the persisted telemetry
  // can be merged back on resume.
  std::unique_ptr<CampaignStore> Store;
  if (A.has("store")) {
    Policy.withStorePath(A.get("store"))
        .withResume(A.has("resume"))
        .withCheckpointInterval(strtoull(
            A.get("checkpoint-interval", "1").c_str(), nullptr, 10));
    telemetry::MetricsRegistry::global().setEnabled(true);
    std::string Error;
    Store = CampaignStore::open(Policy.StorePath, Policy, Error);
    if (!Store)
      fail(Error);
    if (Policy.Resume)
      Store->restoreMetrics();
  } else if (A.has("resume")) {
    fail("--resume requires --store");
  } else if (Serve) {
    fail("serve requires --store (the lease ledger lives under it)");
  }
  if (A.has("deterministic-journal") && !Store)
    fail("--deterministic-journal requires --store");
  if (Policy.Triage && !Store)
    fail("--triage requires --store (it attributes the stored buckets)");

  BugFindingConfig Config;
  Config.TestsPerTool =
      strtoull(A.get("tests", "100").c_str(), nullptr, 10);

  // A durable campaign also journals its decision events into the store,
  // which is what `minispv top` / `minispv tail` monitor.
  std::unique_ptr<obs::JournalWriter> Journal;
  std::unique_ptr<obs::JournalObserver> JournalObs;
  if (Store) {
    std::string Error;
    Journal = obs::JournalWriter::open(Policy.StorePath, Policy.Resume,
                                       A.has("deterministic-journal"), Error);
    if (!Journal)
      fail(Error);
    JournalObs = std::make_unique<obs::JournalObserver>(*Journal);
    if (Journal->empty()) {
      obs::JournalEvent Started;
      Started.Kind = obs::JournalEventKind::CampaignStarted;
      Started.Campaign = Store->campaignId();
      Started.Seed = Policy.Seed;
      Started.Limit = Policy.TransformationLimit;
      Started.Total = Config.TestsPerTool;
      Journal->append(std::move(Started));
      Journal->commit();
    }
  }

  CampaignEngine Engine(Policy, CorpusSpec{}, ToolsetSpec{},
                        fleetFor(A.has("faulty-fleet")));
  if (Store)
    Engine.setCheckpointer(Store.get());
  if (JournalObs)
    Engine.setObserver(JournalObs.get());

  // Serve mode: deploy the lease ledger + worker config under the store,
  // spawn the workers, and let the coordinator source each wave. The
  // scheduling journal (serve.jsonl) is separate from the decision
  // journal so the latter stays diffable across worker counts.
  std::unique_ptr<obs::JournalWriter> ServeJournal;
  std::unique_ptr<serve::ServeCoordinator> Coordinator;
  if (Serve) {
    std::string Error;
    ServeJournal = obs::JournalWriter::openAt(
        obs::servePathFor(Policy.StorePath), /*Resume=*/false,
        A.has("deterministic-journal"), Error);
    if (!ServeJournal)
      fail(Error);
    serve::ServeOptions SOpts;
    SOpts.StoreDir = Policy.StorePath;
    SOpts.Workers = strtoull(A.get("workers", "2").c_str(), nullptr, 10);
    SOpts.WorkerJobs =
        strtoull(A.get("worker-jobs", "1").c_str(), nullptr, 10);
    SOpts.MinispvPath = A.get("minispv", "/proc/self/exe");
    SOpts.LeaseTtlMs =
        strtoull(A.get("lease-ttl-ms", "3000").c_str(), nullptr, 10);
    SOpts.PollMs = strtoull(A.get("poll-ms", "10").c_str(), nullptr, 10);
    SOpts.StallMs = strtoull(A.get("stall-ms", "0").c_str(), nullptr, 10);
    SOpts.KillWorkerAfterShards =
        strtoull(A.get("kill-worker-after", "0").c_str(), nullptr, 10);
    SOpts.ServeJournal = ServeJournal.get();
    Coordinator =
        std::make_unique<serve::ServeCoordinator>(Engine, SOpts);
    serve::WorkerConfigMsg WC;
    WC.CampaignId = Store->campaignId();
    WC.Seed = Policy.Seed;
    WC.TransformationLimit = Policy.TransformationLimit;
    WC.TargetDeadlineSteps = Policy.TargetDeadlineSteps;
    WC.FlakyRetries = Policy.FlakyRetries;
    WC.QuarantineThreshold = Policy.QuarantineThreshold;
    WC.Engine = static_cast<uint8_t>(Policy.Engine);
    WC.UniformInputs = Policy.UniformInputs;
    WC.FaultyFleet = A.has("faulty-fleet") ? 1 : 0;
    WC.Tests = Config.TestsPerTool;
    WC.LeaseTtlMs = SOpts.LeaseTtlMs;
    if (!Coordinator->start(WC, Error))
      fail(Error);
    Engine.setShardProvider(Coordinator.get());
    fprintf(stderr, "serve: %zu worker(s), lease ttl %llu ms\n",
            SOpts.Workers,
            static_cast<unsigned long long>(SOpts.LeaseTtlMs));
  }

  // Scheduling facts (jobs, resume) go to stderr: stdout carries only the
  // decision lines, which are identical at any job count and across
  // interrupt/resume.
  fprintf(stderr,
          "campaign: %zu tests per tool, seed %llu, limit %u, jobs %zu%s\n",
          Config.TestsPerTool,
          static_cast<unsigned long long>(Policy.Seed),
          Policy.TransformationLimit, Policy.Jobs,
          Store ? (Policy.Resume ? ", resuming" : ", durable") : "");
  BugFindingData Data = Engine.runBugFinding(Config);

  size_t TotalDistinct = 0;
  for (const std::string &Tool : Data.ToolNames) {
    ToolTargetStats All = Data.allTargets(Tool);
    TotalDistinct += All.Distinct.size();
    printf("%-18s %zu distinct bugs", Tool.c_str(), All.Distinct.size());
    std::string Detail;
    for (const std::string &TargetName : Data.TargetNames) {
      size_t Count = Data.Stats[Tool][TargetName].Distinct.size();
      if (Count)
        Detail += " " + TargetName + "=" + std::to_string(Count);
    }
    printf("%s\n", Detail.empty() ? " (none)" : Detail.c_str());
  }

  if (A.has("dedup") && !Engine.deadlineExpired()) {
    ReductionConfig RC;
    RC.TestsPerTool = Config.TestsPerTool;
    DedupData Dedup = Engine.runDedup(RC);
    if (!Engine.deadlineExpired()) {
      printf("dedup: %-14s %5s %5s %8s %9s %5s\n", "target", "tests",
             "sigs", "reports", "distinct", "dups");
      for (const DedupTargetResult &Row : Dedup.PerTarget)
        printf("dedup: %-14s %5zu %5zu %8zu %9zu %5zu\n",
               Row.TargetName.c_str(), Row.Tests, Row.Sigs, Row.Reports,
               Row.Distinct, Row.Dups);
      printf("dedup: %-14s %5zu %5zu %8zu %9zu %5zu\n", "TOTAL",
             Dedup.Total.Tests, Dedup.Total.Sigs, Dedup.Total.Reports,
             Dedup.Total.Distinct, Dedup.Total.Dups);
    }
  }

  // Triage post-pass: attribute every bucket in the bug database to its
  // culprit pass. Runs over the store (not the in-memory results), so
  // serve-mode output matches the single-process run byte for byte.
  std::vector<TriagedBucket> Triaged;
  if (Policy.Triage && !Engine.deadlineExpired()) {
    triage::TriageOptions TOpts;
    TOpts.Jobs = Policy.Jobs;
    TOpts.Engine = Policy.Engine;
    Triaged = runTriageOverStore(*Store, Engine.fleet(), TOpts);
  }

  // Drain the deployment before sealing: DONE goes down, workers exit
  // and are reaped. Scheduling facts stay on stderr; stdout above is
  // byte-identical to the single-process run.
  if (Coordinator) {
    Coordinator->shutdown();
    fprintf(stderr, "serve: folded %zu shard(s), %zu lease expir%s\n",
            Coordinator->shardsFolded(), Coordinator->leaseExpiries(),
            Coordinator->leaseExpiries() == 1 ? "y" : "ies");
  }

  if (Engine.deadlineExpired())
    fprintf(stderr, "note: deadline hit; results are truncated%s\n",
            Store ? " (rerun with --resume to continue)" : "");
  for (const std::string &Name : Engine.fleet().names())
    if (Engine.harness().quarantined(Name))
      fprintf(stderr, "note: %s quarantined (consecutive tool errors)\n",
              Name.c_str());

  // Seal the journal. A deadline-truncated run stays open (resume will
  // extend it); a resumed run that was already sealed is left untouched.
  if (Journal && !Engine.deadlineExpired() &&
      (Journal->empty() ||
       Journal->lastKind() != obs::JournalEventKind::CampaignFinished)) {
    // Attribution verdicts land just before the seal, one BugAttributed
    // per bucket in store order (Pass = culprit label, Test = pipeline
    // index, Count = instance index, Checks = bisection probes).
    for (const TriagedBucket &T : Triaged) {
      obs::JournalEvent Event;
      Event.Kind = obs::JournalEventKind::BugAttributed;
      Event.Campaign = Store->campaignId();
      Event.Target = T.Bucket.Target;
      Event.Signature = T.Bucket.Signature;
      Event.Pass = T.Attr.culpritLabel();
      Event.Test = T.Attr.PipelineIndex;
      Event.Count = T.Attr.InstanceIndex;
      Event.Checks = T.Attr.BisectionChecks;
      Journal->append(std::move(Event));
    }
    obs::JournalEvent Finished;
    Finished.Kind = obs::JournalEventKind::CampaignFinished;
    Finished.Campaign = Store->campaignId();
    Finished.Count = TotalDistinct;
    Journal->append(std::move(Finished));
    Journal->commit();
  }
  return 0;
}

/// The worker side of `minispv serve`. Normally spawned by the
/// coordinator; the extra flags are the crash-matrix hooks (die at a
/// shard boundary, die mid-publish, die holding a lease).
int cmdWorker(const Args &A) {
  serve::WorkerOptions Opts;
  Opts.StoreDir = A.require("store");
  Opts.WorkerId = strtoull(A.get("worker-id", "1").c_str(), nullptr, 10);
  Opts.Jobs = strtoull(A.get("jobs", "1").c_str(), nullptr, 10);
  if (A.has("poll-ms"))
    Opts.PollMs = strtoull(A.get("poll-ms").c_str(), nullptr, 10);
  if (A.has("config-wait-ms"))
    Opts.ConfigWaitMs =
        strtoull(A.get("config-wait-ms").c_str(), nullptr, 10);
  Opts.MaxShards = strtoull(A.get("max-shards", "0").c_str(), nullptr, 10);
  Opts.TruncateLastResult = A.has("truncate-last-result");
  Opts.AbandonAfterShards =
      strtoull(A.get("abandon-after", "0").c_str(), nullptr, 10);
  // A worker process has its own registry, so shipping per-shard counter
  // deltas is safe (and required for coordinator totals to match serial).
  Opts.CollectMetrics = true;
  serve::ShardWorker Worker(Opts);
  std::string Error;
  int Code = Worker.run(Error);
  if (Code != 0)
    fprintf(stderr, "minispv: worker %llu: %s\n",
            static_cast<unsigned long long>(Opts.WorkerId), Error.c_str());
  else
    fprintf(stderr, "worker %llu: %zu shard(s) completed\n",
            static_cast<unsigned long long>(Opts.WorkerId),
            Worker.shardsCompleted());
  return Code;
}

int cmdDb(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv db <list|show|diff|gc|merge> --store DIR ...");
  const std::string &Sub = A.Positional[0];
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::openForTools(A.require("store"), Error);
  if (!Store)
    fail(Error);

  if (Sub == "list") {
    printf("%zu campaign(s):\n", Store->manifest().Campaigns.size());
    for (const CampaignEntry &Campaign : Store->manifest().Campaigns)
      printf("  %-28s %zu bucket(s)\n", Campaign.Id.c_str(),
             Campaign.Buckets.size());
    std::vector<BugBucket> Buckets = Store->aggregatedBuckets();
    printf("%zu distinct bucket(s):\n", Buckets.size());
    for (const BugBucket &Bucket : Buckets) {
      // The culprit column appears once the bucket has been triaged
      // (campaign --triage or `minispv triage`); "-" means untriaged.
      triage::BugAttribution Attr;
      bool Triaged = Store->loadAttribution(Bucket, Attr);
      printf("  %-24s x%-4llu %-14s sig=%s\n     types=%s culprit=%s\n",
             Bucket.Dir.c_str(),
             static_cast<unsigned long long>(Bucket.Count),
             Bucket.Target.c_str(), Bucket.Signature.c_str(),
             Bucket.TypesKey.c_str(),
             Triaged ? Attr.culpritLabel().c_str() : "-");
    }
    return 0;
  }
  if (Sub == "show" || Sub == "diff") {
    if (A.Positional.size() < 2)
      fail("usage: minispv db " + Sub +
           " <bucket> [<bucket2>] --store DIR");
    auto findBucket = [&](const std::string &Dir) -> BugBucket {
      for (const BugBucket &Bucket : Store->aggregatedBuckets())
        if (Bucket.Dir == Dir)
          return Bucket;
      fail("no bucket '" + Dir + "' in store (see 'minispv db list')");
    };
    if (Sub == "diff" && A.Positional.size() >= 3) {
      // Two-bucket form: are these the same root cause? Signatures alone
      // conflate distinct bugs sharing a crash site; the culprit pass is
      // the second axis that tells them apart (and merges same-cause
      // buckets whose signatures differ).
      BugBucket First = findBucket(A.Positional[1]);
      BugBucket Second = findBucket(A.Positional[2]);
      triage::BugAttribution FirstAttr, SecondAttr;
      bool HaveFirst = Store->loadAttribution(First, FirstAttr);
      bool HaveSecond = Store->loadAttribution(Second, SecondAttr);
      printf("a: %-24s %-14s sig=%s culprit=%s\n", First.Dir.c_str(),
             First.Target.c_str(), First.Signature.c_str(),
             HaveFirst ? FirstAttr.culpritLabel().c_str() : "-");
      printf("b: %-24s %-14s sig=%s culprit=%s\n", Second.Dir.c_str(),
             Second.Target.c_str(), Second.Signature.c_str(),
             HaveSecond ? SecondAttr.culpritLabel().c_str() : "-");
      if (!HaveFirst || !HaveSecond)
        printf("verdict: untriaged bucket(s) — run `minispv triage "
               "--store` first\n");
      else if (First.Target != Second.Target)
        printf("verdict: different targets\n");
      else if (FirstAttr.Verdict == triage::TriageVerdict::ExactPass &&
               SecondAttr.Verdict == triage::TriageVerdict::ExactPass) {
        if (FirstAttr.culpritLabel() == SecondAttr.culpritLabel())
          printf("verdict: same culprit pass (%s)%s — likely one root "
                 "cause\n",
                 FirstAttr.culpritLabel().c_str(),
                 First.Signature == Second.Signature
                     ? ""
                     : " despite differing signatures");
        else
          printf("verdict: different culprit passes — distinct root "
                 "causes\n");
      } else {
        printf("verdict: inconclusive (%s vs %s)\n",
               triage::triageVerdictName(FirstAttr.Verdict),
               triage::triageVerdictName(SecondAttr.Verdict));
      }
      return 0;
    }
    const std::string BucketDir =
        Store->dir() + "/bugs/" + A.Positional[1];
    if (Sub == "show") {
      printf("%s\n--- reduced reproducer ---\n%s",
             readFile(BucketDir + "/meta.json").c_str(),
             readFile(BucketDir + "/repro.txt").c_str());
      triage::BugAttribution Attr;
      if (Store->loadAttribution(findBucket(A.Positional[1]), Attr)) {
        printf("--- attribution ---\nverdict=%s culprit=%s checks=%u "
               "runs=%u\n",
               triage::triageVerdictName(Attr.Verdict),
               Attr.culpritLabel().c_str(), Attr.BisectionChecks,
               Attr.PassRuns + Attr.LocalizationRuns);
        if (!Attr.Reason.empty())
          printf("reason: %s\n", Attr.Reason.c_str());
      }
    } else {
      printf("%s", readFile(BucketDir + "/delta.diff").c_str());
    }
    return 0;
  }
  if (Sub == "gc") {
    size_t Budget = strtoull(A.require("budget").c_str(), nullptr, 10);
    size_t Before = Store->corpusBytes();
    size_t Removed = Store->gc(Budget);
    printf("gc: evicted %zu corpus entr%s (%zu -> %zu bytes, budget %zu)\n",
           Removed, Removed == 1 ? "y" : "ies", Before,
           Store->corpusBytes(), Budget);
    return 0;
  }
  if (Sub == "merge") {
    if (A.has("from-dir")) {
      // Fold every store found one level under the directory — the shape
      // a fleet of per-machine campaign stores syncs back as.
      size_t Merged = 0, Skipped = 0;
      if (!Store->mergeFromDirectory(A.get("from-dir"), Merged, Skipped,
                                     Error))
        fail(Error);
      printf("merged %zu store(s) (%zu skipped): %zu campaign(s), "
             "%zu distinct bucket(s)\n",
             Merged, Skipped, Store->manifest().Campaigns.size(),
             Store->aggregatedBuckets().size());
      return 0;
    }
    std::unique_ptr<CampaignStore> Other =
        CampaignStore::openForTools(A.require("from"), Error);
    if (!Other)
      fail(Error);
    if (!Store->merge(*Other, Error))
      fail(Error);
    printf("merged: %zu campaign(s), %zu distinct bucket(s)\n",
           Store->manifest().Campaigns.size(),
           Store->aggregatedBuckets().size());
    return 0;
  }
  fail("unknown db subcommand '" + Sub + "'");
}

/// Post-hoc triage over an existing store: attributes every bucket's
/// reduced reproducer to the culprit optimization pass and persists the
/// verdicts back into the bug database (`db list/show/diff` surface
/// them). Attribution is a pure function of (target spec, reproducer,
/// signature), so re-running is idempotent. The faulty fleet's target
/// names are a strict superset of the standard fleet's, so it resolves
/// buckets from either kind of campaign.
int cmdTriage(const Args &A) {
  std::string Error;
  std::unique_ptr<CampaignStore> Store =
      CampaignStore::openForTools(A.require("store"), Error);
  if (!Store)
    fail(Error);
  triage::TriageOptions Options;
  Options.Jobs = strtoull(A.get("jobs", "1").c_str(), nullptr, 10);
  if (!Options.Jobs)
    Options.Jobs = 1;
  if (A.has("exec") && !execEngineFromName(A.get("exec"), Options.Engine))
    fail("unknown execution engine '" + A.get("exec") +
         "' (expected lowered or tree)");
  std::vector<TriagedBucket> Triaged =
      runTriageOverStore(*Store, TargetFleet::faulty(), Options);
  size_t Exact = 0;
  for (const TriagedBucket &T : Triaged)
    if (T.Attr.Verdict == triage::TriageVerdict::ExactPass)
      ++Exact;
  printf("triage: %zu bucket(s), %zu attributed to an exact pass\n",
         Triaged.size(), Exact);
  return 0;
}

int cmdTargets(const Args &A) {
  for (const Target &T : fleetFor(A.has("faulty-fleet"))) {
    std::string Notes = T.canExecute() ? "crashes+miscompilations"
                                       : "crashes only";
    if (T.spec().Faults.ToolErrorRate > 0.0)
      Notes += " tool-error-rate=" +
               std::to_string(T.spec().Faults.ToolErrorRate);
    if (T.spec().Bugs.hasFaultFlavors())
      Notes += " flaky/hang bugs";
    printf("%-14s version=%-22s %s\n", T.name().c_str(),
           T.spec().Version.c_str(), Notes.c_str());
  }
  return 0;
}

/// Loads one metrics snapshot from a JSON file, with the observability
/// exit-code contract: missing file -> 2, malformed JSON -> 1.
telemetry::MetricsSnapshot loadMetricsFileOrExit(const std::string &Path) {
  telemetry::MetricsSnapshot Snapshot;
  std::string Error;
  if (!telemetry::metricsFromJson(readFileOrExit(Path), Snapshot, Error))
    failWithCode(ObsExitParseError, Path + ": " + Error);
  return Snapshot;
}

int cmdReport(const Args &A) {
  std::string Error;

  // Every metrics source named on the command line contributes: --store
  // loads the store's persisted snapshot, and each positional file loads a
  // --metrics-out dump. They compose (multiple sources render in
  // sequence) instead of one silently shadowing the other.
  std::vector<std::pair<std::string, telemetry::MetricsSnapshot>> Sources;
  if (A.has("store")) {
    std::unique_ptr<CampaignStore> Store =
        CampaignStore::openForTools(A.get("store"), Error);
    if (!Store)
      failWithCode(ObsExitMissingInput, Error);
    telemetry::MetricsSnapshot Snapshot;
    if (!Store->loadMetrics(Snapshot, Error))
      failWithCode(ObsExitParseError, Error);
    Sources.emplace_back("store " + A.get("store"), std::move(Snapshot));
  }

  if (A.has("compare")) {
    // `report --compare BASE CURRENT`: the perf-trajectory gate. BASE is
    // the flag value (the committed bench/baselines snapshot), CURRENT the
    // positional file from the fresh bench run.
    if (A.Positional.size() != 1)
      fail("usage: minispv report --compare BASE.json CURRENT.json "
           "[--regression-threshold PCT] [--warn-only]");
    telemetry::MetricsSnapshot Base = loadMetricsFileOrExit(A.get("compare"));
    telemetry::MetricsSnapshot Current =
        loadMetricsFileOrExit(A.Positional[0]);
    obs::CompareOptions Opts;
    Opts.ThresholdPct =
        strtod(A.get("regression-threshold", "25").c_str(), nullptr);
    obs::CompareResult Result = obs::compareSnapshots(Base, Current, Opts);
    printf("comparing %s (base) vs %s (current)\n\n", A.get("compare").c_str(),
           A.Positional[0].c_str());
    printf("%s", Result.Report.c_str());
    for (const std::string &Warning : Result.Warnings)
      fprintf(stderr, "minispv: warning: %s\n", Warning.c_str());
    if (Result.Regressions.empty()) {
      printf("\nno regressions beyond %.0f%%\n", Opts.ThresholdPct);
      return 0;
    }
    for (const std::string &Regression : Result.Regressions)
      fprintf(stderr, "minispv: %s: %s\n",
              A.has("warn-only") ? "warning (regression)" : "REGRESSION",
              Regression.c_str());
    return A.has("warn-only") ? 0 : ObsExitRegression;
  }

  for (const std::string &Path : A.Positional)
    Sources.emplace_back(Path, loadMetricsFileOrExit(Path));

  if (A.has("trace")) {
    // `report --trace t.jsonl`: the per-phase/per-target time breakdown.
    // A metrics source (if also given) contributes the hottest
    // transformation kinds from its timing histograms.
    std::vector<obs::TraceRecord> Records;
    std::string TracePath = A.get("trace");
    if (!std::ifstream(TracePath))
      failWithCode(ObsExitMissingInput, "cannot open '" + TracePath +
                                            "' (missing or unreadable)");
    if (!obs::loadTraceFile(TracePath, Records, Error))
      failWithCode(ObsExitParseError, Error);
    printf("%s", obs::renderTraceReport(
                     Records, Sources.empty() ? nullptr : &Sources[0].second)
                     .c_str());
    return 0;
  }

  if (Sources.empty())
    fail("usage: minispv report (<metrics.json>... | --store DIR) "
         "[--trace t.jsonl] [--compare BASE.json CURRENT.json]");
  for (const auto &[Label, Snapshot] : Sources) {
    if (Sources.size() > 1)
      printf("=== %s ===\n", Label.c_str());
    printf("%s", telemetry::renderMetricsReport(Snapshot).c_str());
    if (Sources.size() > 1)
      printf("\n");
  }
  return 0;
}

int cmdTail(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv tail <store> [--follow] [--json] "
         "[--timeout-ms N] [--interval-ms N]");
  const std::string JournalPath = obs::journalPathFor(A.Positional[0]);
  const bool Follow = A.has("follow");
  const bool Json = A.has("json");
  const uint64_t TimeoutMs =
      strtoull(A.get("timeout-ms", "0").c_str(), nullptr, 10);
  const uint64_t IntervalMs =
      strtoull(A.get("interval-ms", "200").c_str(), nullptr, 10);

  if (!Follow && !std::ifstream(JournalPath))
    failWithCode(ObsExitMissingInput, "cannot open '" + JournalPath +
                                          "' (missing or unreadable)");

  obs::JournalTailer Tailer(JournalPath);
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  bool Finished = false;
  while (true) {
    std::vector<obs::JournalEvent> Fresh;
    std::string Error;
    if (!Tailer.poll(Fresh, Error))
      failWithCode(ObsExitParseError, Error);
    for (const obs::JournalEvent &Event : Fresh) {
      printf("%s\n", Json ? obs::serializeJournalEvent(Event).c_str()
                          : obs::formatJournalEvent(Event).c_str());
      if (Event.Kind == obs::JournalEventKind::CampaignFinished)
        Finished = true;
    }
    fflush(stdout);
    if (!Follow || Finished)
      break;
    if (TimeoutMs && std::chrono::steady_clock::now() >= Deadline)
      failWithCode(ObsExitTimeout,
                   "tail --follow timed out after " +
                       std::to_string(TimeoutMs) +
                       " ms without seeing CampaignFinished");
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
  return 0;
}

int cmdTop(const Args &A) {
  if (A.Positional.empty())
    fail("usage: minispv top <store> [--once] [--timeout-ms N] "
         "[--interval-ms N]");
  const std::string StoreDir = A.Positional[0];
  const std::string JournalPath = obs::journalPathFor(StoreDir);
  const bool Once = A.has("once");
  const uint64_t TimeoutMs =
      strtoull(A.get("timeout-ms", "0").c_str(), nullptr, 10);
  const uint64_t IntervalMs =
      strtoull(A.get("interval-ms", "500").c_str(), nullptr, 10);

  if (Once && !std::ifstream(JournalPath))
    failWithCode(ObsExitMissingInput, "cannot open '" + JournalPath +
                                          "' (missing or unreadable)");

  obs::JournalTailer Tailer(JournalPath);
  std::vector<obs::JournalEvent> Events;
  // A scale-out run also has a scheduling journal; when present, a
  // per-worker panel is appended below the campaign summary.
  obs::JournalTailer ServeTailer(obs::servePathFor(StoreDir));
  std::vector<obs::JournalEvent> ServeEvents;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (true) {
    std::string Error;
    if (!Tailer.poll(Events, Error))
      failWithCode(ObsExitParseError, Error);
    obs::TopModel Model = obs::buildTopModel(Events);
    bool HaveServe = false;
    if (std::ifstream(obs::servePathFor(StoreDir))) {
      if (!ServeTailer.poll(ServeEvents, Error))
        failWithCode(ObsExitParseError, Error);
      HaveServe = true;
    }

    // The store's persisted metrics snapshot (saved at checkpoints) adds
    // cache hit rates when available; its absence is not an error.
    telemetry::MetricsSnapshot Metrics;
    bool HaveMetrics = false;
    {
      std::string StoreError;
      std::unique_ptr<CampaignStore> Store =
          CampaignStore::openForTools(StoreDir, StoreError);
      HaveMetrics = Store && Store->loadMetrics(Metrics, StoreError);
    }

    if (!Once)
      printf("\033[H\033[2J"); // refresh in place
    printf("%s", obs::renderTop(Model, HaveMetrics ? &Metrics : nullptr)
                     .c_str());
    if (HaveServe)
      printf("\n%s",
             obs::renderServePanel(obs::buildServeModel(ServeEvents))
                 .c_str());
    fflush(stdout);
    if (Once || Model.Finished)
      break;
    if (TimeoutMs && std::chrono::steady_clock::now() >= Deadline)
      failWithCode(ObsExitTimeout,
                   "top timed out after " + std::to_string(TimeoutMs) +
                       " ms without seeing CampaignFinished");
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
  return 0;
}

/// `minispv help` (also --help/-h): the command list plus the exit-code
/// contract, documented once — every subcommand adheres to it.
int cmdHelp() {
  printf(
      "minispv — transformation-based compiler-testing campaign driver\n"
      "\n"
      "single-module commands:\n"
      "  gen        generate a seed module (+ inputs) from a seed\n"
      "  validate   check a module against the IR rules\n"
      "  run        execute a module (reference semantics or one target)\n"
      "  fuzz       apply semantics-preserving transformations\n"
      "  replay     re-apply a saved transformation sequence\n"
      "  reduce     shrink a bug-inducing sequence (paper's reducer)\n"
      "\n"
      "campaign commands:\n"
      "  campaign   run a bug-finding campaign in this process\n"
      "             (--store DIR makes it durable/resumable)\n"
      "  serve      the same campaign, scaled out: spawns K worker\n"
      "             processes leasing waves from DIR/serve; output is\n"
      "             byte-identical to `campaign` at any worker count\n"
      "  worker     one scale-out worker (normally spawned by serve)\n"
      "  triage     attribute stored bugs to their culprit pass (crash\n"
      "             bisection + miscompilation localization); `campaign\n"
      "             --triage` runs the same post-pass inline\n"
      "  targets    list the simulated compiler fleet\n"
      "\n"
      "observability commands:\n"
      "  report     render metrics dumps, traces, bench comparisons\n"
      "  top        live single-screen campaign summary (+ per-worker\n"
      "             panel when DIR/journal/serve.jsonl exists)\n"
      "  tail       stream the campaign's decision journal\n"
      "  db         triage the cross-campaign bug database\n"
      "             (list/show/diff/gc/merge; merge takes --from STORE\n"
      "             or --from-dir DIR-of-stores)\n"
      "\n"
      "exit codes (uniform across subcommands):\n"
      "  0  success\n"
      "  1  parse/usage/protocol error (bad flags, malformed input)\n"
      "  2  missing input (file, store, or serve deployment not found)\n"
      "  3  timeout (top/tail --timeout-ms, worker config wait)\n"
      "  4  bench regression (report --compare)\n");
  return 0;
}

int dispatch(const std::string &Command, const Args &A) {
  if (Command == "gen")
    return cmdGen(A);
  if (Command == "validate")
    return cmdValidate(A);
  if (Command == "run")
    return cmdRun(A);
  if (Command == "fuzz")
    return cmdFuzz(A);
  if (Command == "replay")
    return cmdReplay(A);
  if (Command == "reduce")
    return cmdReduce(A);
  if (Command == "campaign")
    return cmdCampaign(A, /*Serve=*/false);
  if (Command == "serve")
    return cmdCampaign(A, /*Serve=*/true);
  if (Command == "worker")
    return cmdWorker(A);
  if (Command == "db")
    return cmdDb(A);
  if (Command == "triage")
    return cmdTriage(A);
  if (Command == "targets")
    return cmdTargets(A);
  if (Command == "report")
    return cmdReport(A);
  if (Command == "top")
    return cmdTop(A);
  if (Command == "tail")
    return cmdTail(A);
  if (Command == "help" || Command == "--help" || Command == "-h")
    return cmdHelp();
  fail("unknown command '" + Command + "'");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    fprintf(stderr,
            "usage: minispv "
            "<gen|validate|run|fuzz|replay|reduce|campaign|serve|worker|db|"
            "triage|targets|report|top|tail|help> [--metrics-out m.json] "
            "[--trace-out t.jsonl] ...\n");
    return 1;
  }
  std::string Command = Argv[1];
  Args A(Argc - 2, Argv + 2,
         {"baseline", "no-recommendations", "miscompilation", "faulty-fleet",
          "resume", "dedup", "follow", "json", "once", "warn-only",
          "deterministic-journal", "truncate-last-result", "post-reduce",
          "triage"});

  std::string MetricsOut = A.get("metrics-out");
  std::string TraceOut = A.get("trace-out");
  if (!MetricsOut.empty())
    telemetry::MetricsRegistry::global().setEnabled(true);
  if (!TraceOut.empty()) {
    std::string Error;
    if (!telemetry::Tracer::global().open(TraceOut, Error))
      fail(Error);
  }

  int Code = dispatch(Command, A);

  if (!MetricsOut.empty()) {
    std::string Error;
    if (!telemetry::writeGlobalMetrics(MetricsOut, Error))
      fail(Error);
    fprintf(stderr, "minispv: wrote metrics to %s\n", MetricsOut.c_str());
  }
  telemetry::Tracer::global().close();
  return Code;
}
