//===- examples/find_and_reduce.cpp - End-to-end bug hunt ------------------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full Figure 1 + Figure 2 workflow against a real (simulated)
/// target: generate a reference program, fuzz with increasing seeds until
/// a SwiftShader-style crash or miscompilation appears, then reduce the
/// transformation sequence and print a bug report: the crash signature or
/// result mismatch, the minimized sequence, and the small
/// original-vs-reduced delta (the paper's Figure 3 artefact).
///
//===----------------------------------------------------------------------===//

#include "campaign/CampaignEngine.h"
#include "core/ReductionPipeline.h"
#include "ir/Text.h"

#include <cstdio>

using namespace spvfuzz;

int main() {
  CampaignEngine Engine(
      ExecutionPolicy{}.withSeed(7).withTransformationLimit(250));
  const Target *SwiftShader = Engine.fleet().find("SwiftShader");

  const ToolConfig &Tool = Engine.tools()[0];
  printf("Hunting for a SwiftShader bug with %s...\n", Tool.Name.c_str());

  for (size_t TestIndex = 0; TestIndex < 500; ++TestIndex) {
    size_t ReferenceIndex = 0;
    FuzzResult Fuzzed = Engine.regenerate(Tool, TestIndex, ReferenceIndex);
    const GeneratedProgram &Reference =
        Engine.corpus().References[ReferenceIndex];

    TargetRun Run = SwiftShader->run(Fuzzed.Variant, Reference.Input);
    std::string Signature;
    if (Run.interesting()) {
      Signature = Run.Signature;
      printf("\nTest %zu crashed the target: \"%s\"\n", TestIndex,
             Signature.c_str());
    } else {
      TargetRun OriginalRun =
          SwiftShader->run(Reference.M, Reference.Input);
      if (OriginalRun.executed() && Run.executed() &&
          Run.Result != OriginalRun.Result) {
        Signature = MiscompilationSignature;
        printf("\nTest %zu is miscompiled: original renders %s, variant "
               "renders %s\n",
               TestIndex, OriginalRun.Result.str().c_str(),
               Run.Result.str().c_str());
      }
    }
    if (Signature.empty())
      continue;

    printf("Variant: %zu instructions (original: %zu), %zu "
           "transformations\n",
           Fuzzed.Variant.instructionCount(),
           Reference.M.instructionCount(), Fuzzed.Sequence.size());

    InterestingnessTest Test = makeInterestingnessTest(
        *SwiftShader, Signature, Reference.M, Reference.Input);
    ReduceResult Reduced =
        ReductionPipeline(ReductionPlan{})
            .run(Reference.M, Reference.Input, Fuzzed.Sequence, Test);

    printf("\n--- Bug report ---\n");
    printf("Target:    SwiftShader %s\n",
           SwiftShader->spec().Version.c_str());
    printf("Signature: %s\n", Signature.c_str());
    printf("Reduced:   %zu transformations (from %zu), %zu interestingness "
           "checks\n",
           Reduced.Minimized.size(), Fuzzed.Sequence.size(), Reduced.Checks);
    printf("Delta:     %zu -> %zu instructions (original %zu)\n",
           Fuzzed.Variant.instructionCount(),
           Reduced.ReducedVariant.instructionCount(),
           Reference.M.instructionCount());
    printf("\nMinimized transformation sequence:\n%s",
           serializeSequence(Reduced.Minimized).c_str());
    printf("\nDelta between original and reduced variant (Figure 3 "
           "style):\n%s",
           diffModuleText(Reference.M, Reduced.ReducedVariant).c_str());
    return 0;
  }
  printf("No bug found in 500 tests — unexpected; the simulated targets "
         "should be buggier than that.\n");
  return 1;
}
