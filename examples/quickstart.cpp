//===- examples/quickstart.cpp - The paper's ğ2.1 worked example ----------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recreates Figures 4 and 5 of the paper on MiniSPV: build the tiny
/// "basic blocks" program, apply a hand-written sequence of
/// semantics-preserving transformations (T1 split a block, T2 add a dead
/// block, T3 store into it, T4 add a load, T5 obfuscate the guard through
/// a uniform), then reduce the sequence against a hypothetical bug and
/// print the 1-minimal subsequence and the original-vs-reduced delta.
///
//===----------------------------------------------------------------------===//

#include "analysis/Validator.h"
#include "core/ReductionPipeline.h"
#include "core/TransformationUtil.h"
#include "core/Transformations.h"
#include "exec/Interpreter.h"
#include "ir/ModuleBuilder.h"
#include "ir/Text.h"

#include <cstdio>

using namespace spvfuzz;

namespace {

/// The ğ2.1 program: s := i + j; t := s + s; print(t) with inputs
/// i=1, j=2, k=true. "print" is a store to output location 0.
struct Example {
  Module M;
  ShaderInput Input;
  Id UniformI, UniformK, Output, EntryBlock;
};

Example buildExample() {
  Example E;
  ModuleBuilder Builder(E.M);
  Id IntType = Builder.getIntType();
  Id BoolType = Builder.getBoolType();
  Id VoidType = Builder.getVoidType();

  E.UniformI = Builder.addUniform(IntType, 0);
  Id UniformJ = Builder.addUniform(IntType, 1);
  E.UniformK = Builder.addUniform(BoolType, 2);
  E.Output = Builder.addOutput(IntType, 0);
  E.Input.Bindings[0] = Value::makeInt(1);
  E.Input.Bindings[1] = Value::makeInt(2);
  E.Input.Bindings[2] = Value::makeBool(true);

  Function &Main = Builder.startFunction(VoidType, {});
  BasicBlock &Entry = Main.entryBlock();
  E.EntryBlock = Entry.LabelId;
  Id LoadI = E.M.takeFreshId();
  Entry.Body.push_back(ModuleBuilder::makeLoad(IntType, LoadI, E.UniformI));
  Id LoadJ = E.M.takeFreshId();
  Entry.Body.push_back(ModuleBuilder::makeLoad(IntType, LoadJ, UniformJ));
  Id S = E.M.takeFreshId();
  Entry.Body.push_back(
      ModuleBuilder::makeBinOp(Op::IAdd, IntType, S, LoadI, LoadJ));
  Id T = E.M.takeFreshId();
  Entry.Body.push_back(ModuleBuilder::makeBinOp(Op::IAdd, IntType, T, S, S));
  Entry.Body.push_back(ModuleBuilder::makeStore(E.Output, T));
  Entry.Body.push_back(ModuleBuilder::makeReturn());
  Builder.setEntryPoint(Main.id());
  return E;
}

/// Builds the Figure 4 transformation sequence. Descriptors for positions
/// that only exist after earlier transformations are found by replaying
/// the prefix on a scratch copy — mirroring how fuzzer passes construct
/// transformations against the current module state.
TransformationSequence buildSequence(const Example &E) {
  // Fresh ids, chosen explicitly so the example output is stable.
  const Id TrueConst = 100, BlockB = 101, BlockC = 102, LoadV = 103,
           GuardLoad = 104;

  const Function &Main = *E.M.entryPoint();
  InstructionDescriptor BeforeAddST =
      describeInstruction(Main.entryBlock(), 3); // before "t := s + s"

  TransformationSequence Sequence;
  // Supporting: a true constant, needed by the dead-block guard.
  Sequence.push_back(std::make_shared<TransformationAddConstantScalar>(
      TrueConst, findBoolTypeId(E.M), 1, false));
  // T1: split the entry block before "t := s + s".
  Sequence.push_back(
      std::make_shared<TransformationSplitBlock>(BeforeAddST, BlockB));
  // T2: add a dead block C on a true-guarded edge out of the entry block.
  Sequence.push_back(std::make_shared<TransformationAddDeadBlock>(
      BlockC, E.EntryBlock, TrueConst));

  // Replay the prefix to address positions inside the new blocks.
  Module Probe = E.M;
  FactManager ProbeFacts;
  ProbeFacts.setKnownInput(E.Input);
  applySequence(Probe, ProbeFacts, Sequence);

  // T3: store to the output variable inside the dead block — only legal
  // because C is dead (the AddStore precondition consumes the fact T2
  // recorded).
  const BasicBlock &BlockCRef = *Probe.findBlockDef(BlockC).second;
  InstructionDescriptor BeforeCTerm =
      describeInstruction(BlockCRef, BlockCRef.Body.size() - 1);
  Id LoadIResult = Probe.entryPoint()->entryBlock().Body[0].Result;
  Sequence.push_back(std::make_shared<TransformationAddStore>(
      E.Output, LoadIResult, BeforeCTerm));
  // T4: add a load from uniform i before "t := s + s"; loads are safe
  // anywhere.
  Sequence.push_back(
      std::make_shared<TransformationAddLoad>(LoadV, E.UniformI, BeforeAddST));
  // T5: obfuscate the guard — replace the use of the true constant in the
  // entry block's conditional branch with a load from uniform k, which the
  // fuzzer (but not the compiler) knows holds true.
  const BasicBlock &Entry = *Probe.findBlockDef(E.EntryBlock).second;
  InstructionDescriptor GuardTerm =
      describeInstruction(Entry, Entry.Body.size() - 1);
  Sequence.push_back(
      std::make_shared<TransformationReplaceConstantWithUniform>(
          GuardTerm, 0, E.UniformK, GuardLoad));
  return Sequence;
}

/// The hypothetical compiler bug of Figure 5: triggered whenever a
/// conditional branch's condition is a loaded (rather than constant)
/// value — i.e. it needs the dead block *and* the obfuscation, but not the
/// split, the store, or the extra load.
bool bugTriggers(const Module &Candidate, const FactManager &) {
  for (const Function &Func : Candidate.Functions)
    for (const BasicBlock &Block : Func.Blocks) {
      if (!Block.hasTerminator() ||
          Block.terminator().Opcode != Op::BranchConditional)
        continue;
      const Instruction *CondDef =
          Candidate.findDef(Block.terminator().idOperand(0));
      if (CondDef && CondDef->Opcode == Op::Load)
        return true;
    }
  return false;
}

} // namespace

int main() {
  Example E = buildExample();
  printf("=== Original program (prints 6, as in Figure 4) ===\n%s\n",
         writeModuleText(E.M).c_str());
  ExecResult Reference = interpret(E.M, E.Input);
  printf("Semantics(P, I) = %s\n\n", Reference.str().c_str());

  TransformationSequence Sequence = buildSequence(E);
  Module Variant = E.M;
  FactManager Facts;
  Facts.setKnownInput(E.Input);
  size_t Applied = applySequence(Variant, Facts, Sequence).size();

  printf("=== After %zu/%zu transformations (Figure 4, rightmost) ===\n%s\n",
         Applied, Sequence.size(), writeModuleText(Variant).c_str());
  printf("Valid: %s; semantics preserved: %s\n\n",
         isValidModule(Variant) ? "yes" : "NO",
         interpret(Variant, E.Input) == Reference ? "yes" : "NO");

  ReduceResult Reduced =
      ReductionPipeline(ReductionPlan{}).run(E.M, E.Input, Sequence, bugTriggers);
  printf("=== Reduction (Figure 5) ===\n");
  printf("1-minimal sequence: %zu of %zu transformations (%zu "
         "interestingness checks)\n%s\n",
         Reduced.Minimized.size(), Sequence.size(), Reduced.Checks,
         serializeSequence(Reduced.Minimized).c_str());
  printf("=== Delta: original vs reduced variant ===\n%s\n",
         diffModuleText(E.M, Reduced.ReducedVariant).c_str());
  printf("Reduced variant still equivalent to the original: %s\n",
         interpret(Reduced.ReducedVariant, E.Input) == Reference ? "yes"
                                                                 : "NO");
  return 0;
}
