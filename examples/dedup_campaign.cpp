//===- examples/dedup_campaign.cpp - Weekend-campaign deduplication --------===//
//
// Part of the spirv-fuzz reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ğ2.1 "suppose we ran fuzzing over a weekend" scenario: run a small
/// campaign against one target, reduce every crash-triggering test, show
/// the transformation-type set of each reduced test, and apply the
/// Figure 6 algorithm to pick which tests to investigate.
///
//===----------------------------------------------------------------------===//

#include "campaign/CampaignEngine.h"
#include "core/Dedup.h"
#include "core/ReductionPipeline.h"

#include <cstdio>

using namespace spvfuzz;

int main() {
  CampaignEngine Engine(
      ExecutionPolicy{}.withSeed(11).withTransformationLimit(200));
  const Target *NVidia = Engine.fleet().find("NVIDIA");

  const ToolConfig &Tool = Engine.tools()[0];
  printf("Campaign: %s vs %s, collecting crash-triggering tests...\n\n",
         Tool.Name.c_str(), NVidia->name().c_str());

  struct ReducedTest {
    size_t TestIndex;
    std::string Signature;
    std::set<TransformationKind> Types;
  };
  std::vector<ReducedTest> ReducedTests;

  for (size_t TestIndex = 0;
       TestIndex < 400 && ReducedTests.size() < 25; ++TestIndex) {
    size_t ReferenceIndex = 0;
    FuzzResult Fuzzed = Engine.regenerate(Tool, TestIndex, ReferenceIndex);
    const GeneratedProgram &Reference =
        Engine.corpus().References[ReferenceIndex];
    TargetRun Run = NVidia->run(Fuzzed.Variant, Reference.Input);
    if (!Run.interesting())
      continue;

    InterestingnessTest Test =
        makeCrashInterestingness(*NVidia, Run.Signature, Reference.Input);
    ReduceResult Reduced =
        ReductionPipeline(ReductionPlan{})
            .run(Reference.M, Reference.Input, Fuzzed.Sequence, Test);
    ReducedTests.push_back(
        {TestIndex, Run.Signature, dedupTypesOf(Reduced.Minimized)});
  }

  printf("%zu reduced crash tests; transformation-type sets "
         "(ğ3.5 ignore-list applied):\n", ReducedTests.size());
  for (size_t I = 0; I < ReducedTests.size(); ++I) {
    printf("  test %-3zu  types={", ReducedTests[I].TestIndex);
    bool First = true;
    for (TransformationKind Kind : ReducedTests[I].Types) {
      printf("%s%s", First ? "" : ", ", transformationKindName(Kind));
      First = false;
    }
    printf("}  crash=\"%s\"\n", ReducedTests[I].Signature.c_str());
  }

  std::vector<std::set<TransformationKind>> TypeSets;
  for (const ReducedTest &Test : ReducedTests)
    TypeSets.push_back(Test.Types);
  std::vector<size_t> Chosen = deduplicateTests(TypeSets);

  printf("\nFigure 6 recommends investigating %zu of %zu tests:\n",
         Chosen.size(), ReducedTests.size());
  std::set<std::string> Covered, All;
  for (const ReducedTest &Test : ReducedTests)
    All.insert(Test.Signature);
  for (size_t Index : Chosen) {
    printf("  -> test %zu (\"%s\")\n", ReducedTests[Index].TestIndex,
           ReducedTests[Index].Signature.c_str());
    Covered.insert(ReducedTests[Index].Signature);
  }
  printf("\nGround truth: the campaign hit %zu distinct crash signatures; "
         "the recommended reports\ncover %zu of them with %zu duplicate "
         "report(s).\n",
         All.size(), Covered.size(), Chosen.size() - Covered.size());
  return 0;
}
